#include "net/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.h"

namespace bohr::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

WanTopology two_sites(double cap = 10.0) {
  return WanTopology({Site{"A", cap, cap}, Site{"B", cap, cap}});
}

// ---------------------------------------------------------------------------
// FaultPlan helpers.

TEST(FaultPlanTest, EmptyAndWanQuiet) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.wan_quiet());
  EXPECT_EQ(plan.event_count(), 0u);

  plan.lp_failure = true;
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.wan_quiet());  // lp_failure is control-plane only

  plan.lp_failure = false;
  plan.probe_loss_probability = 0.1;
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.wan_quiet());

  plan.probe_loss_probability = 0.0;
  plan.kills.push_back(FlowKill{2.0});
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.wan_quiet());
  EXPECT_EQ(plan.event_count(), 1u);
}

TEST(FaultPlanTest, SiteDarkWindowsAreHalfOpen) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{2, 1.0, 5.0});
  EXPECT_FALSE(plan.site_dark_at(2, 0.5));
  EXPECT_TRUE(plan.site_dark_at(2, 1.0));
  EXPECT_TRUE(plan.site_dark_at(2, 4.999));
  EXPECT_FALSE(plan.site_dark_at(2, 5.0));
  EXPECT_FALSE(plan.site_dark_at(3, 2.0));  // other sites unaffected
}

TEST(FaultPlanTest, RecoveryTimeChasesOverlappingWindows) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{2, 0.0, 5.0});
  plan.outages.push_back(OutageWindow{2, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(plan.recovery_time(2, 1.0), 9.0);
  // Not dark -> returns t unchanged.
  EXPECT_DOUBLE_EQ(plan.recovery_time(2, 9.0), 9.0);
  EXPECT_DOUBLE_EQ(plan.recovery_time(0, 1.0), 1.0);
}

TEST(FaultPlanTest, CapacityFactorsComposeWithOutages) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{1, 0.0, 4.0});
  plan.degradations.push_back(LinkDegradation{1, 0.0, 10.0, 0.5,
                                              /*uplink=*/true,
                                              /*downlink=*/false});
  // Dark dominates everything.
  EXPECT_DOUBLE_EQ(plan.uplink_factor(1, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.downlink_factor(1, 2.0), 0.0);
  // After recovery only the degraded direction is scaled.
  EXPECT_DOUBLE_EQ(plan.uplink_factor(1, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.downlink_factor(1, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.uplink_factor(1, 10.0), 1.0);  // window closed
}

TEST(FaultPlanTest, NextEventAfterWalksAllEdges) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 1.0, 5.0});
  plan.degradations.push_back(LinkDegradation{1, 3.0, 7.0, 0.5});
  plan.kills.push_back(FlowKill{6.0});
  EXPECT_DOUBLE_EQ(plan.next_event_after(0.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.next_event_after(1.0), 3.0);  // strictly after
  EXPECT_DOUBLE_EQ(plan.next_event_after(5.5), 6.0);
  EXPECT_DOUBLE_EQ(plan.next_event_after(7.0), kInf);
}

TEST(FaultPlanTest, RestrictedToProjectsPhases) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 0.0, 5.0, kPhaseProbe});
  plan.degradations.push_back(
      LinkDegradation{1, 0.0, 5.0, 0.5, true, true, kPhaseQuery});
  plan.kills.push_back(FlowKill{2.0});  // all phases
  plan.probe_loss_probability = 0.2;
  plan.lp_failure = true;

  const FaultPlan probe = plan.restricted_to(kPhaseProbe);
  EXPECT_EQ(probe.outages.size(), 1u);
  EXPECT_EQ(probe.degradations.size(), 0u);
  EXPECT_EQ(probe.kills.size(), 1u);
  EXPECT_DOUBLE_EQ(probe.probe_loss_probability, 0.2);

  const FaultPlan query = plan.restricted_to(kPhaseQuery);
  EXPECT_EQ(query.outages.size(), 0u);
  EXPECT_EQ(query.degradations.size(), 1u);
  EXPECT_EQ(query.kills.size(), 1u);
  // Probe loss is meaningless outside the probe exchange.
  EXPECT_DOUBLE_EQ(query.probe_loss_probability, 0.0);
  EXPECT_TRUE(query.lp_failure);  // control-plane flags survive projection

  const FaultPlan move = plan.restricted_to(kPhaseMovement);
  EXPECT_EQ(move.event_count(), 1u);  // only the wildcard kill
}

TEST(FaultPlanTest, ProbeLossIsDeterministicAndCalibrated) {
  FaultPlan plan;
  plan.probe_loss_probability = 0.35;
  std::size_t lost = 0, total = 0;
  for (std::size_t d = 0; d < 10; ++d) {
    for (SiteId i = 0; i < 10; ++i) {
      for (SiteId j = 0; j < 10; ++j) {
        if (i == j) continue;
        const bool first = plan.probe_lost(d, i, j);
        EXPECT_EQ(first, plan.probe_lost(d, i, j));  // stable hash
        lost += first ? 1u : 0u;
        ++total;
      }
    }
  }
  const double fraction = static_cast<double>(lost) / total;
  EXPECT_GT(fraction, 0.2);
  EXPECT_LT(fraction, 0.5);

  plan.probe_loss_probability = 0.0;
  EXPECT_FALSE(plan.probe_lost(0, 0, 1));
  plan.probe_loss_probability = 1.0;
  EXPECT_TRUE(plan.probe_lost(0, 0, 1));

  // A different seed must shuffle which pairs are lost.
  FaultPlan reseeded;
  reseeded.probe_loss_probability = 0.35;
  reseeded.seed = plan.seed + 1;
  std::size_t differs = 0;
  for (SiteId i = 0; i < 10; ++i) {
    for (SiteId j = 0; j < 10; ++j) {
      plan.probe_loss_probability = 0.35;
      if (plan.probe_lost(0, i, j) != reseeded.probe_lost(0, i, j)) ++differs;
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(FaultPlanTest, ValidateRejectsMalformedWindows) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 5.0, 5.0});  // empty window
  EXPECT_THROW(plan.validate(), ContractViolation);

  plan.outages.clear();
  plan.outages.push_back(OutageWindow{0, 0.0, kInf});  // would hang the sim
  EXPECT_THROW(plan.validate(), ContractViolation);

  plan.outages.clear();
  plan.degradations.push_back(LinkDegradation{0, 0.0, 1.0, 1.5});
  EXPECT_THROW(plan.validate(), ContractViolation);

  plan.degradations.clear();
  plan.probe_loss_probability = -0.1;
  EXPECT_THROW(plan.validate(), ContractViolation);
}

// ---------------------------------------------------------------------------
// Spec parser.

TEST(FaultParseTest, ParsesFullGrammar) {
  const FaultPlan plan = parse_fault_plan(
      "outage:site=6,start=0,end=15,phases=probe+move;"
      "degrade:site=3,start=1,end=4,factor=0.5,link=up;"
      "kill:time=2,src=1;"
      "probe-loss:p=0.3,seed=99;"
      "retry:max=3,base=0.1,cap=2,mode=restart;"
      "lp-failure");
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].site, 6u);
  EXPECT_DOUBLE_EQ(plan.outages[0].start, 0.0);
  EXPECT_DOUBLE_EQ(plan.outages[0].end, 15.0);
  EXPECT_EQ(plan.outages[0].phases, kPhaseProbe | kPhaseMovement);
  ASSERT_EQ(plan.degradations.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.degradations[0].factor, 0.5);
  EXPECT_TRUE(plan.degradations[0].uplink);
  EXPECT_FALSE(plan.degradations[0].downlink);
  EXPECT_EQ(plan.degradations[0].phases, kPhaseAll);
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.kills[0].time, 2.0);
  EXPECT_EQ(plan.kills[0].src, 1u);
  EXPECT_EQ(plan.kills[0].dst, kAnySite);
  EXPECT_DOUBLE_EQ(plan.probe_loss_probability, 0.3);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.retry.max_retries, 3u);
  EXPECT_DOUBLE_EQ(plan.retry.backoff_base_seconds, 0.1);
  EXPECT_DOUBLE_EQ(plan.retry.backoff_cap_seconds, 2.0);
  EXPECT_FALSE(plan.retry.resume);
  EXPECT_TRUE(plan.lp_failure);
}

TEST(FaultParseTest, EmptySpecIsInert) {
  EXPECT_TRUE(parse_fault_plan("").empty());
}

TEST(FaultParseTest, ParsesCrashAndStorageClauses) {
  const FaultPlan plan = parse_fault_plan(
      "crash:phase=movement_plan;"
      "torn-write:file=3,fraction=0.25;"
      "bit-flip:file=0,bit=13");
  EXPECT_EQ(plan.crash_after_phase, "movement_plan");
  ASSERT_EQ(plan.storage_faults.size(), 2u);
  EXPECT_EQ(plan.storage_faults[0].kind, StorageFault::Kind::kTornWrite);
  EXPECT_EQ(plan.storage_faults[0].file_index, 3u);
  EXPECT_DOUBLE_EQ(plan.storage_faults[0].fraction, 0.25);
  EXPECT_EQ(plan.storage_faults[1].kind, StorageFault::Kind::kBitFlip);
  EXPECT_EQ(plan.storage_faults[1].file_index, 0u);
  EXPECT_EQ(plan.storage_faults[1].bit, 13u);
  EXPECT_FALSE(plan.empty());
  // Crash and storage faults live off the data plane: WAN simulation,
  // probes, and the LP all take the pristine path, so the lag-deadline
  // auto-enforcement must not flip on (byte-identity across recovery).
  EXPECT_TRUE(plan.data_plane_quiet());
}

TEST(FaultParseTest, DataPlaneFaultsAreNotQuiet) {
  EXPECT_FALSE(parse_fault_plan("probe-loss:p=0.3").data_plane_quiet());
  EXPECT_FALSE(
      parse_fault_plan("outage:site=1,start=0,end=2").data_plane_quiet());
  EXPECT_FALSE(parse_fault_plan("lp-failure").data_plane_quiet());
}

TEST(FaultParseTest, RejectsMalformedCrashAndStorageClauses) {
  // Required keys.
  EXPECT_THROW(parse_fault_plan("crash"), ContractViolation);
  EXPECT_THROW(parse_fault_plan("crash:phase="), ContractViolation);
  EXPECT_THROW(parse_fault_plan("torn-write:fraction=0.5"),
               ContractViolation);
  EXPECT_THROW(parse_fault_plan("bit-flip:bit=2"), ContractViolation);
  // Only one crash point per plan.
  EXPECT_THROW(parse_fault_plan("crash:phase=a;crash:phase=b"),
               ContractViolation);
  // Fraction range is [0, 1): 1.0 would keep the whole file intact.
  EXPECT_THROW(parse_fault_plan("torn-write:file=0,fraction=1.0"),
               ContractViolation);
  EXPECT_THROW(parse_fault_plan("torn-write:file=0,fraction=-0.1"),
               ContractViolation);
  // Unknown keys.
  EXPECT_THROW(parse_fault_plan("crash:phase=x,wat=1"), ContractViolation);
  EXPECT_THROW(parse_fault_plan("bit-flip:file=0,wat=1"), ContractViolation);
}

TEST(FaultParseTest, RejectsMalformedClauses) {
  // Unknown clause type.
  EXPECT_THROW(parse_fault_plan("nonsense"), ContractViolation);
  // Missing required key.
  EXPECT_THROW(parse_fault_plan("outage:site=1,end=4"), ContractViolation);
  // Unknown key.
  EXPECT_THROW(parse_fault_plan("kill:time=2,wat=3"), ContractViolation);
  // Empty window.
  EXPECT_THROW(parse_fault_plan("outage:site=1,start=5,end=5"),
               ContractViolation);
  // Factor and probability ranges.
  EXPECT_THROW(parse_fault_plan("degrade:site=0,start=0,end=1,factor=1.5"),
               ContractViolation);
  EXPECT_THROW(parse_fault_plan("probe-loss:p=2"), ContractViolation);
  // Bad enumerations.
  EXPECT_THROW(
      parse_fault_plan("degrade:site=0,start=0,end=1,factor=0.5,link=sideways"),
      ContractViolation);
  EXPECT_THROW(parse_fault_plan("retry:max=1,base=0.1,mode=panic"),
               ContractViolation);
  EXPECT_THROW(parse_fault_plan("outage:site=1,start=0,end=2,phases=lunch"),
               ContractViolation);
  // Not a number / trailing junk.
  EXPECT_THROW(parse_fault_plan("kill:time=soon"), ContractViolation);
  EXPECT_THROW(parse_fault_plan("kill:time=2x"), ContractViolation);
  // lp-failure takes no body.
  EXPECT_THROW(parse_fault_plan("lp-failure:x=1"), ContractViolation);
}

// ---------------------------------------------------------------------------
// Faulted flow simulation.

TEST(FaultSimTest, EmptyPlanMatchesPristineSimulatorExactly) {
  const WanTopology topo = make_paper_topology(1e6);
  std::vector<Flow> flows;
  for (SiteId i = 0; i < topo.site_count(); ++i) {
    for (SiteId j = 0; j < topo.site_count(); ++j) {
      flows.push_back(Flow{i, j, 5e5, static_cast<double>(i) * 0.25});
    }
  }
  const auto pristine = simulate_flows(topo, flows);
  const auto faulted = simulate_flows_with_faults(topo, flows, FaultPlan{});
  ASSERT_EQ(faulted.flows.size(), pristine.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_DOUBLE_EQ(faulted.flows[f].finish_time, pristine[f].finish_time);
    EXPECT_DOUBLE_EQ(faulted.flows[f].mean_rate, pristine[f].mean_rate);
    EXPECT_DOUBLE_EQ(faulted.flows[f].delivered_bytes, flows[f].bytes);
    EXPECT_TRUE(faulted.flows[f].completed);
    EXPECT_EQ(faulted.flows[f].retries, 0u);
  }
  EXPECT_EQ(faulted.interruptions, 0u);
  EXPECT_EQ(faulted.retries, 0u);
  EXPECT_EQ(faulted.failures, 0u);
}

TEST(FaultSimTest, FactorOneDegradationIsBitIdentical) {
  // A factor-1.0 multiply is exact, so a "degradation" that changes
  // nothing must reproduce the pristine trajectory bit for bit.
  const WanTopology topo = WanTopology({Site{"A", 10, 1000},
                                        Site{"B", 1000, 1000},
                                        Site{"C", 1000, 1000}});
  const std::vector<Flow> flows{{0, 1, 25, 0}, {0, 2, 75, 0}, {1, 2, 40, 0.5}};
  FaultPlan plan;
  plan.degradations.push_back(LinkDegradation{0, 0.0, 1e6, 1.0});
  const auto pristine = simulate_flows(topo, flows);
  const auto faulted = simulate_flows_with_faults(topo, flows, plan);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_DOUBLE_EQ(faulted.flows[f].finish_time, pristine[f].finish_time);
    EXPECT_DOUBLE_EQ(faulted.flows[f].mean_rate, pristine[f].mean_rate);
  }
}

TEST(FaultSimTest, OutageDelaysFlowUntilRecovery) {
  // Receiver dark in [0, 5): the flow is interrupted at activation and
  // becomes eligible at recovery, then runs at the full 10 B/s.
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{1, 0.0, 5.0});
  const auto report =
      simulate_flows_with_faults(two_sites(), {{0, 1, 50, 0}}, plan);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 10.0);
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_bytes, 50.0);
  EXPECT_TRUE(report.flows[0].completed);
  EXPECT_EQ(report.flows[0].retries, 1u);
  EXPECT_EQ(report.interruptions, 1u);
  EXPECT_DOUBLE_EQ(report.makespan, 10.0);
}

TEST(FaultSimTest, DegradationSlowsButDoesNotInterrupt) {
  // Sender uplink at 50% in [0, 2): 10 bytes land in the window, the
  // remaining 40 at full rate. No retry is consumed.
  FaultPlan plan;
  plan.degradations.push_back(LinkDegradation{0, 0.0, 2.0, 0.5,
                                              /*uplink=*/true,
                                              /*downlink=*/false});
  const auto report =
      simulate_flows_with_faults(two_sites(), {{0, 1, 50, 0}}, plan);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 6.0);
  EXPECT_EQ(report.flows[0].retries, 0u);
  EXPECT_EQ(report.interruptions, 0u);
}

TEST(FaultSimTest, ZeroFactorStallsWithoutConsumingRetries) {
  // factor=0 parks the link (flows idle at rate 0) — unlike an outage it
  // is not a connection reset, so no retry budget is spent.
  FaultPlan plan;
  plan.degradations.push_back(LinkDegradation{0, 0.0, 3.0, 0.0});
  const auto report =
      simulate_flows_with_faults(two_sites(), {{0, 1, 50, 0}}, plan);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 8.0);
  EXPECT_EQ(report.flows[0].retries, 0u);
}

TEST(FaultSimTest, KillTriggersBackoffThenResume) {
  // Killed at t=2 with 20 bytes delivered; backoff 0.5s, then the
  // remaining 30 bytes finish: 2 + 0.5 + 3 = 5.5.
  FaultPlan plan;
  plan.kills.push_back(FlowKill{2.0});
  const auto report =
      simulate_flows_with_faults(two_sites(), {{0, 1, 50, 0}}, plan);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 5.5);
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_bytes, 50.0);
  EXPECT_EQ(report.flows[0].retries, 1u);
  EXPECT_EQ(report.retries, 1u);
}

TEST(FaultSimTest, RestartModeLosesInFlightProgress) {
  // Same kill, but restart semantics re-send the full 50 bytes:
  // 2 + 0.5 + 5 = 7.5.
  FaultPlan plan;
  plan.kills.push_back(FlowKill{2.0});
  plan.retry.resume = false;
  const auto report =
      simulate_flows_with_faults(two_sites(), {{0, 1, 50, 0}}, plan);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 7.5);
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_bytes, 50.0);
}

TEST(FaultSimTest, KillMatchesEndpointsSelectively) {
  FaultPlan plan;
  plan.kills.push_back(FlowKill{2.0, /*src=*/0, /*dst=*/1});
  const auto report = simulate_flows_with_faults(
      WanTopology({Site{"A", 10, 10}, Site{"B", 10, 10}, Site{"C", 10, 10}}),
      {{0, 1, 50, 0}, {2, 1, 50, 0}}, plan);
  EXPECT_EQ(report.flows[0].retries, 1u);   // matched
  EXPECT_EQ(report.flows[1].retries, 0u);   // different src, spared
  EXPECT_EQ(report.interruptions, 1u);
}

TEST(FaultSimTest, ExhaustedRetriesRecordFailureNotHang) {
  // Three outage windows hit the flow; max_retries=1 means the third
  // interruption abandons it with the 5 bytes delivered between windows.
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{1, 0.0, 10.0});
  plan.outages.push_back(OutageWindow{1, 10.5, 50.0});
  plan.outages.push_back(OutageWindow{1, 51.0, 90.0});
  plan.retry.max_retries = 1;
  plan.retry.backoff_base_seconds = 0.25;
  const auto report =
      simulate_flows_with_faults(two_sites(), {{0, 1, 100, 0}}, plan);
  EXPECT_FALSE(report.flows[0].completed);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 10.5);  // abandonment time
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_bytes, 5.0);
  EXPECT_EQ(report.flows[0].retries, 1u);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.interruptions, 2u);
  EXPECT_DOUBLE_EQ(report.makespan, 10.5);
}

TEST(FaultSimTest, DeadlineSnapshotsDeliveredBytes) {
  // The deadline never changes the dynamics — it only records how much
  // had landed by then: 40 of 100 bytes at t=4, full delivery at t=10.
  const auto report = simulate_flows_with_faults(
      two_sites(), {{0, 1, 100, 0}}, FaultPlan{}, /*deadline=*/4.0);
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_by_deadline, 40.0);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 10.0);
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_bytes, 100.0);
  EXPECT_TRUE(report.flows[0].completed);
}

TEST(FaultSimTest, RestartModeCountsNothingUntilCompletion) {
  // Under restart semantics an attempt that has not completed by the
  // deadline has delivered nothing durable.
  FaultPlan plan;
  plan.retry.resume = false;
  const auto report = simulate_flows_with_faults(
      two_sites(), {{0, 1, 100, 0}, {0, 1, 10, 0}}, plan, /*deadline=*/4.0);
  EXPECT_DOUBLE_EQ(report.flows[0].delivered_by_deadline, 0.0);
  // The small flow shares the uplink (5 B/s each), completes at t=2 —
  // before the deadline, so its bytes count in full.
  EXPECT_DOUBLE_EQ(report.flows[1].delivered_by_deadline, 10.0);
}

// ---------------------------------------------------------------------------
// Slow-site windows and the churn runner's clock re-basing.

TEST(FaultPlanTest, ComputeSlowdownTakesMaxOfOverlappingWindows) {
  FaultPlan plan;
  plan.slowdowns.push_back(SiteSlowdown{1, 0.0, 10.0, 2.0});
  plan.slowdowns.push_back(SiteSlowdown{1, 5.0, 20.0, 6.0});
  EXPECT_DOUBLE_EQ(plan.compute_slowdown(1, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.compute_slowdown(1, 7.0), 6.0);  // overlap: max
  EXPECT_DOUBLE_EQ(plan.compute_slowdown(1, 15.0), 6.0);
  EXPECT_DOUBLE_EQ(plan.compute_slowdown(1, 20.0), 1.0);  // half-open
  EXPECT_DOUBLE_EQ(plan.compute_slowdown(0, 7.0), 1.0);  // other site
  EXPECT_FALSE(plan.data_plane_quiet());
  // Slowdowns stretch compute, not links: the WAN fast path stays valid.
  EXPECT_TRUE(plan.wan_quiet());
}

TEST(FaultPlanTest, ShiftedByRebasesWindowsOntoALaterClock) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 5.0, 15.0});   // straddles 10
  plan.outages.push_back(OutageWindow{1, 0.0, 8.0});    // entirely past
  plan.slowdowns.push_back(SiteSlowdown{2, 12.0, 30.0, 4.0});
  plan.kills.push_back(FlowKill{9.0});   // in the past: dropped
  plan.kills.push_back(FlowKill{25.0});  // survives, shifted
  plan.probe_loss_probability = 0.25;
  plan.crash_after_phase = "placement";

  const FaultPlan shifted = plan.shifted_by(10.0);
  // The straddling window is clamped to start at the new origin.
  ASSERT_EQ(shifted.outages.size(), 1u);
  EXPECT_EQ(shifted.outages[0].site, 0u);
  EXPECT_DOUBLE_EQ(shifted.outages[0].start, 0.0);
  EXPECT_DOUBLE_EQ(shifted.outages[0].end, 5.0);
  ASSERT_EQ(shifted.slowdowns.size(), 1u);
  EXPECT_DOUBLE_EQ(shifted.slowdowns[0].start, 2.0);
  EXPECT_DOUBLE_EQ(shifted.slowdowns[0].end, 20.0);
  ASSERT_EQ(shifted.kills.size(), 1u);
  EXPECT_DOUBLE_EQ(shifted.kills[0].time, 15.0);
  // Untimed faults carry over; process faults belong to the whole run
  // and are dropped like restricted_to does.
  EXPECT_DOUBLE_EQ(shifted.probe_loss_probability, 0.25);
  EXPECT_TRUE(shifted.crash_after_phase.empty());
  // Shifting by zero preserves every timed event.
  EXPECT_EQ(plan.shifted_by(0.0).event_count(), plan.event_count());
}

TEST(FaultPlanTest, RestrictedToFiltersSlowdownPhases) {
  FaultPlan plan;
  plan.slowdowns.push_back(SiteSlowdown{0, 0.0, 10.0, 3.0, kPhaseQuery});
  plan.slowdowns.push_back(SiteSlowdown{1, 0.0, 10.0, 2.0, kPhaseProbe});
  const FaultPlan query = plan.restricted_to(kPhaseQuery);
  ASSERT_EQ(query.slowdowns.size(), 1u);
  EXPECT_EQ(query.slowdowns[0].site, 0u);
}

TEST(FaultPlanTest, ValidateRejectsMalformedSlowdowns) {
  FaultPlan zero_length;
  zero_length.slowdowns.push_back(SiteSlowdown{0, 5.0, 5.0, 2.0});
  EXPECT_THROW(zero_length.validate(), ContractViolation);
  FaultPlan sub_unit;
  sub_unit.slowdowns.push_back(SiteSlowdown{0, 0.0, 5.0, 0.5});
  EXPECT_THROW(sub_unit.validate(), ContractViolation);
  FaultPlan fine;
  fine.slowdowns.push_back(SiteSlowdown{0, 0.0, 5.0, 1.0});
  EXPECT_NO_THROW(fine.validate());
}

TEST(FaultParseTest, ParsesSlowSiteClause) {
  const FaultPlan plan = parse_fault_plan(
      "slow-site:site=2,start=250,end=520,factor=6,phases=query");
  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_EQ(plan.slowdowns[0].site, 2u);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].start, 250.0);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].end, 520.0);
  EXPECT_DOUBLE_EQ(plan.slowdowns[0].factor, 6.0);
  EXPECT_EQ(plan.slowdowns[0].phases, kPhaseQuery);
  // The factor defaults when omitted.
  EXPECT_DOUBLE_EQ(parse_fault_plan("slow-site:site=0,start=0,end=1")
                       .slowdowns[0]
                       .factor,
                   4.0);
}

TEST(FaultParseTest, RejectsMalformedSlowSiteClauses) {
  // Unknown keys, missing windows, zero-length windows, and sub-unit
  // factors all name the offending clause instead of crashing.
  EXPECT_THROW(parse_fault_plan("slow-site:site=0,start=0,end=1,wat=3"),
               ContractViolation);
  EXPECT_THROW(parse_fault_plan("slow-site:site=0,end=1"), ContractViolation);
  EXPECT_THROW(parse_fault_plan("slow-site:site=0,start=5,end=5"),
               ContractViolation);
  EXPECT_THROW(parse_fault_plan("slow-site:site=0,start=0,end=1,factor=0.5"),
               ContractViolation);
}

TEST(FaultParseTest, OverlappingOutageWindowsParseAndCompose) {
  // Overlap is legal — darkness is the union, recovery chases the
  // furthest reachable end.
  const FaultPlan plan = parse_fault_plan(
      "outage:site=3,start=0,end=10;outage:site=3,start=8,end=20");
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.site_dark_at(3, 9.0));
  EXPECT_DOUBLE_EQ(plan.recovery_time(3, 1.0), 20.0);
}

TEST(FaultSimTest, LocalAndEmptyFlowsBypassTheWan) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 0.0, 100.0});
  const auto report = simulate_flows_with_faults(
      two_sites(), {{0, 0, 50, 3.0}, {0, 1, 0.0, 2.0}}, plan);
  EXPECT_DOUBLE_EQ(report.flows[0].finish_time, 3.0);
  EXPECT_DOUBLE_EQ(report.flows[1].finish_time, 2.0);
  EXPECT_EQ(report.interruptions, 0u);
}

}  // namespace
}  // namespace bohr::net

// Conservation properties of the (faulted) fluid simulator: bytes are
// neither created nor destroyed, and no transfer beats the ideal
// single-flow time — across capacity-change epochs, outages, kills,
// retry/backoff cycles, and deadline snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/faults.h"
#include "net/transfer.h"

namespace bohr::net {
namespace {

std::vector<Flow> all_pairs_flows(const WanTopology& topo, double bytes) {
  std::vector<Flow> flows;
  for (SiteId i = 0; i < topo.site_count(); ++i) {
    for (SiteId j = 0; j < topo.site_count(); ++j) {
      if (i == j) continue;
      const double start =
          static_cast<double>(i * topo.site_count() + j) * 0.05;
      flows.push_back(Flow{i, j, bytes, start});
    }
  }
  return flows;
}

/// Shared invariant pack for a faulted run under resume semantics.
void check_invariants(const WanTopology& topo, const std::vector<Flow>& flows,
                      const FaultSimReport& report, bool resume) {
  ASSERT_EQ(report.flows.size(), flows.size());
  double max_finish = 0.0;
  std::size_t failures = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const FaultyFlowResult& r = report.flows[f];
    SCOPED_TRACE("flow " + std::to_string(f));
    EXPECT_TRUE(std::isfinite(r.finish_time));
    EXPECT_GE(r.finish_time, flows[f].start_time);
    // Bytes conservation: delivery never exceeds the request, and the
    // by-deadline snapshot never exceeds the final delivery.
    EXPECT_LE(r.delivered_bytes, flows[f].bytes * (1 + 1e-9) + 1e-6);
    EXPECT_LE(r.delivered_by_deadline, r.delivered_bytes + 1e-6);
    EXPECT_GE(r.delivered_by_deadline, 0.0);
    if (r.completed) {
      EXPECT_DOUBLE_EQ(r.delivered_bytes, flows[f].bytes);
      // Never faster than an empty WAN at full nominal capacity.
      const double ideal =
          single_flow_seconds(topo, flows[f].src, flows[f].dst, flows[f].bytes);
      EXPECT_GE(r.finish_time + 1e-9, flows[f].start_time + ideal);
      // mean_rate is defined over wall duration including stalls, so it
      // is bounded by the nominal bottleneck rate.
      const double bottleneck =
          std::min(topo.uplink(flows[f].src), topo.downlink(flows[f].dst));
      EXPECT_LE(r.mean_rate, bottleneck * (1 + 1e-9));
    } else {
      ++failures;
      if (!resume) {
        EXPECT_DOUBLE_EQ(r.delivered_bytes, 0.0);
      }
    }
    max_finish = std::max(max_finish, r.finish_time);
  }
  EXPECT_EQ(report.failures, failures);
  EXPECT_DOUBLE_EQ(report.makespan, max_finish);
  // Retries are re-attempts; every retry stems from an interruption.
  EXPECT_LE(report.retries, report.interruptions);
  EXPECT_EQ(report.interruptions, report.retries + report.failures);
}

TEST(FlowConservationTest, PristineSimulatorConservesBytes) {
  const WanTopology topo = make_paper_topology(1e6);
  const auto flows = all_pairs_flows(topo, 5e5);
  const auto results = simulate_flows(topo, flows);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    // mean_rate * duration reconstructs exactly the bytes sent.
    const double duration = results[f].finish_time - flows[f].start_time;
    EXPECT_NEAR(results[f].mean_rate * duration, flows[f].bytes,
                flows[f].bytes * 1e-9);
    const double ideal =
        single_flow_seconds(topo, flows[f].src, flows[f].dst, flows[f].bytes);
    EXPECT_GE(duration + 1e-9, ideal);
  }
}

TEST(FlowConservationTest, HoldsAcrossCapacityEpochs) {
  // Degradations carve the timeline into epochs with different rate
  // allocations; total delivery must still match the request exactly.
  const WanTopology topo = make_paper_topology(1e6);
  FaultPlan plan;
  plan.degradations.push_back(LinkDegradation{2, 1.0, 20.0, 0.4});
  plan.degradations.push_back(
      LinkDegradation{7, 0.5, 6.0, 0.25, /*uplink=*/false, /*downlink=*/true});
  const auto flows = all_pairs_flows(topo, 5e5);
  const auto report = simulate_flows_with_faults(topo, flows, plan);
  check_invariants(topo, flows, report, /*resume=*/true);
  EXPECT_EQ(report.failures, 0u);  // degradations never abandon flows
  for (const auto& r : report.flows) EXPECT_TRUE(r.completed);
}

TEST(FlowConservationTest, HoldsThroughKillRetryCycles) {
  const WanTopology topo = make_paper_topology(1e6);
  FaultPlan plan;
  plan.kills.push_back(FlowKill{2.0});
  plan.kills.push_back(FlowKill{4.0, /*src=*/3});
  plan.retry.backoff_base_seconds = 0.3;
  const auto flows = all_pairs_flows(topo, 5e5);
  const auto report = simulate_flows_with_faults(topo, flows, plan);
  check_invariants(topo, flows, report, /*resume=*/true);
  EXPECT_GT(report.retries, 0u);
  for (const auto& r : report.flows) EXPECT_TRUE(r.completed);
}

TEST(FlowConservationTest, HoldsUnderCombinedFaultsWithDeadline) {
  const WanTopology topo = make_paper_topology(1e6);
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{5, 2.0, 8.0});
  plan.degradations.push_back(LinkDegradation{2, 1.0, 20.0, 0.4});
  plan.kills.push_back(FlowKill{4.0});
  plan.retry.max_retries = 10;
  plan.retry.backoff_base_seconds = 0.3;
  const auto flows = all_pairs_flows(topo, 5e5);
  const auto report =
      simulate_flows_with_faults(topo, flows, plan, /*deadline=*/15.0);
  check_invariants(topo, flows, report, /*resume=*/true);
}

TEST(FlowConservationTest, HoldsUnderRestartSemantics) {
  const WanTopology topo = make_paper_topology(1e6);
  FaultPlan plan;
  plan.kills.push_back(FlowKill{1.5});
  plan.retry.resume = false;
  plan.retry.backoff_base_seconds = 0.2;
  const auto flows = all_pairs_flows(topo, 2e5);
  const auto report =
      simulate_flows_with_faults(topo, flows, plan, /*deadline=*/10.0);
  check_invariants(topo, flows, report, /*resume=*/false);
  for (const auto& r : report.flows) {
    // Restart mode: the deadline snapshot is all-or-nothing per flow.
    if (r.delivered_by_deadline > 0.0) {
      EXPECT_DOUBLE_EQ(r.delivered_by_deadline, r.delivered_bytes);
    }
  }
}

TEST(FlowConservationTest, AbandonedFlowsReportPartialDelivery) {
  // An aggressive plan that exhausts the retry budget must still account
  // for every byte that landed before abandonment (resume mode).
  const WanTopology topo = make_paper_topology(1e6);
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 0.0, 10.0});
  plan.outages.push_back(OutageWindow{0, 10.2, 30.0});
  plan.outages.push_back(OutageWindow{0, 30.2, 60.0});
  plan.retry.max_retries = 1;
  plan.retry.backoff_base_seconds = 0.1;
  std::vector<Flow> flows{{0, 1, 1e7, 0.0}, {2, 3, 1e6, 0.0}};
  const auto report = simulate_flows_with_faults(topo, flows, plan);
  check_invariants(topo, flows, report, /*resume=*/true);
  EXPECT_FALSE(report.flows[0].completed);
  EXPECT_GT(report.flows[0].delivered_bytes, 0.0);
  EXPECT_LT(report.flows[0].delivered_bytes, flows[0].bytes);
  EXPECT_TRUE(report.flows[1].completed);  // uninvolved flow unharmed
}

}  // namespace
}  // namespace bohr::net

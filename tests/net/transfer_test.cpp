#include "net/transfer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bohr::net {
namespace {

WanTopology two_sites(double up_a, double down_a, double up_b, double down_b) {
  return WanTopology({Site{"A", up_a, down_a}, Site{"B", up_b, down_b}});
}

TEST(TransferTest, SingleFlowLimitedByMinOfUpDown) {
  const WanTopology topo = two_sites(10.0, 100.0, 100.0, 4.0);
  // A -> B limited by B's downlink (4 B/s).
  EXPECT_DOUBLE_EQ(single_flow_seconds(topo, 0, 1, 40.0), 10.0);
  // B -> A limited by A's downlink? B uplink 100, A downlink 100 -> 100.
  EXPECT_DOUBLE_EQ(single_flow_seconds(topo, 1, 0, 100.0), 1.0);
}

TEST(TransferTest, IntraSiteFlowIsFree) {
  const WanTopology topo = two_sites(1, 1, 1, 1);
  EXPECT_DOUBLE_EQ(single_flow_seconds(topo, 0, 0, 1e9), 0.0);
}

TEST(TransferTest, MaxMinSharesUplinkEqually) {
  // Two flows from A (uplink 10) to two different receivers with huge
  // downlinks: each should get 5.
  const WanTopology topo = WanTopology({Site{"A", 10, 1000},
                                        Site{"B", 1000, 1000},
                                        Site{"C", 1000, 1000}});
  const std::vector<Flow> flows{{0, 1, 100, 0}, {0, 2, 100, 0}};
  const auto rates = max_min_rates(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(TransferTest, MaxMinRespectsDownlinkBottleneck) {
  // Flow 1 constrained by its tiny receiver downlink; flow 2 then gets
  // the remaining uplink (max-min, not equal split).
  const WanTopology topo = WanTopology({Site{"A", 10, 1000},
                                        Site{"B", 1000, 2},
                                        Site{"C", 1000, 1000}});
  const std::vector<Flow> flows{{0, 1, 100, 0}, {0, 2, 100, 0}};
  const auto rates = max_min_rates(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST(TransferTest, RatesNeverExceedCapacity) {
  const WanTopology topo = make_paper_topology(1e6);
  std::vector<Flow> flows;
  for (SiteId i = 0; i < topo.site_count(); ++i) {
    for (SiteId j = 0; j < topo.site_count(); ++j) {
      if (i != j) flows.push_back(Flow{i, j, 1e6, 0});
    }
  }
  const auto rates = max_min_rates(topo, flows);
  std::vector<double> up(topo.site_count(), 0.0);
  std::vector<double> down(topo.site_count(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    up[flows[f].src] += rates[f];
    down[flows[f].dst] += rates[f];
  }
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    EXPECT_LE(up[s], topo.uplink(s) * (1 + 1e-9));
    EXPECT_LE(down[s], topo.downlink(s) * (1 + 1e-9));
  }
}

TEST(TransferTest, SimulateSingleFlowMatchesClosedForm) {
  const WanTopology topo = two_sites(10, 10, 10, 10);
  const auto results = simulate_flows(topo, {{0, 1, 50, 0}});
  EXPECT_DOUBLE_EQ(results[0].finish_time, 5.0);
  EXPECT_DOUBLE_EQ(results[0].mean_rate, 10.0);
}

TEST(TransferTest, SimulateTwoEqualFlowsShareThenFinishTogether) {
  const WanTopology topo = WanTopology({Site{"A", 10, 1000},
                                        Site{"B", 1000, 1000},
                                        Site{"C", 1000, 1000}});
  const auto results =
      simulate_flows(topo, {{0, 1, 50, 0}, {0, 2, 50, 0}});
  EXPECT_NEAR(results[0].finish_time, 10.0, 1e-6);
  EXPECT_NEAR(results[1].finish_time, 10.0, 1e-6);
}

TEST(TransferTest, ShortFlowFreesBandwidthForLongFlow) {
  // Flows share A's uplink (10): both run at 5 until the short one (25B)
  // finishes at t=5; the long one (75B) then runs at 10: 50B left -> 5s.
  const WanTopology topo = WanTopology({Site{"A", 10, 1000},
                                        Site{"B", 1000, 1000},
                                        Site{"C", 1000, 1000}});
  const auto results =
      simulate_flows(topo, {{0, 1, 25, 0}, {0, 2, 75, 0}});
  EXPECT_NEAR(results[0].finish_time, 5.0, 1e-6);
  EXPECT_NEAR(results[1].finish_time, 10.0, 1e-6);
}

TEST(TransferTest, LateArrivalWaitsForStart) {
  const WanTopology topo = two_sites(10, 10, 10, 10);
  const auto results = simulate_flows(topo, {{0, 1, 50, 3.0}});
  EXPECT_NEAR(results[0].finish_time, 8.0, 1e-9);
}

TEST(TransferTest, ZeroByteFlowCompletesAtStart) {
  const WanTopology topo = two_sites(10, 10, 10, 10);
  const auto results = simulate_flows(topo, {{0, 1, 0.0, 2.0}});
  EXPECT_DOUBLE_EQ(results[0].finish_time, 2.0);
}

TEST(TransferTest, StaggeredArrivalsAreFair) {
  // First flow alone at 10 B/s for 1s (10B done), then shares at 5 B/s.
  // Flow 1: 40B left at t=1 -> 8s more if alone... both have 40B at t=1,
  // they run at 5 each: flow 1 finishes its 40 at t=9, flow 2 too.
  const WanTopology topo = WanTopology({Site{"A", 10, 1000},
                                        Site{"B", 1000, 1000},
                                        Site{"C", 1000, 1000}});
  const auto results =
      simulate_flows(topo, {{0, 1, 50, 0.0}, {0, 2, 40, 1.0}});
  EXPECT_NEAR(results[0].finish_time, 9.0, 1e-6);
  EXPECT_NEAR(results[1].finish_time, 9.0, 1e-6);
}

TEST(TransferTest, AllToAllShuffleCompletes) {
  const WanTopology topo = make_paper_topology(1e6);
  std::vector<Flow> flows;
  for (SiteId i = 0; i < topo.site_count(); ++i) {
    for (SiteId j = 0; j < topo.site_count(); ++j) {
      flows.push_back(Flow{i, j, 5e5, 0});
    }
  }
  const auto results = simulate_flows(topo, flows);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].src == flows[f].dst) {
      EXPECT_DOUBLE_EQ(results[f].finish_time, 0.0);
    } else {
      EXPECT_GT(results[f].finish_time, 0.0);
      EXPECT_TRUE(std::isfinite(results[f].finish_time));
    }
  }
}

TEST(TransferTest, SlowerTierFinishesLater) {
  const WanTopology topo = make_paper_topology(1e6);
  // Same bytes out of Singapore (tier 5x) vs Seoul (tier 1x).
  const auto results =
      simulate_flows(topo, {{0, 1, 1e6, 0}, {6, 7, 1e6, 0}});
  EXPECT_LT(results[0].finish_time, results[1].finish_time);
}

}  // namespace
}  // namespace bohr::net

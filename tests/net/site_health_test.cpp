// SiteHealthMonitor: the probe-timeout state machine feeding the elastic
// migration controller. Everything here is deterministic — the "probes"
// are answered by the fault plan, so each test drives the clock by hand
// and asserts exact state transitions.
#include "net/site_health.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

namespace bohr::net {
namespace {

FaultPlan dark(SiteId site, double start, double end) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{site, start, end});
  return plan;
}

TEST(SiteHealthTest, AllHealthyUnderInertPlan) {
  SiteHealthMonitor monitor(4);
  monitor.observe(FaultPlan{}, 0.0);
  monitor.observe(FaultPlan{}, 10.0);
  for (SiteId i = 0; i < 4; ++i) {
    EXPECT_EQ(monitor.health(i), SiteHealth::kHealthy);
    EXPECT_TRUE(monitor.usable(i));
    EXPECT_DOUBLE_EQ(monitor.observed_slowdown(i), 1.0);
  }
  EXPECT_EQ(monitor.usable_count(), 4u);
  EXPECT_EQ(monitor.describe(), "0:H 1:H 2:H 3:H");
}

TEST(SiteHealthTest, DeadAfterConsecutiveMisses) {
  HealthOptions opts;
  opts.dead_after_misses = 2;
  SiteHealthMonitor monitor(2, opts);
  const FaultPlan plan = dark(1, 0.0, 100.0);
  monitor.observe(plan, 0.0);  // miss 1: not yet dead
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  monitor.observe(plan, 1.0);  // miss 2: dead
  EXPECT_EQ(monitor.health(1), SiteHealth::kDead);
  EXPECT_FALSE(monitor.usable(1));
  EXPECT_TRUE(monitor.usable(0));
  EXPECT_EQ(monitor.usable_count(), 1u);
  EXPECT_EQ(monitor.describe(), "0:H 1:X");
}

TEST(SiteHealthTest, MissedProbesBackOffExponentially) {
  // base=1s: probes are due at 0 (miss 1, wait 1), 1 (miss 2, wait 2),
  // 3 (miss 3). Observations inside a backoff window must not probe, so
  // with dead_after_misses=3 the site is still alive at t=2.
  HealthOptions opts;
  opts.probe_backoff_base_seconds = 1.0;
  opts.probe_backoff_cap_seconds = 8.0;
  opts.dead_after_misses = 3;
  SiteHealthMonitor monitor(1, opts);
  const FaultPlan plan = dark(0, 0.0, 100.0);
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 0.5);  // backing off — skipped
  monitor.observe(plan, 1.0);  // miss 2
  monitor.observe(plan, 2.0);  // backing off — skipped
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  monitor.observe(plan, 3.0);  // miss 3: dead
  EXPECT_EQ(monitor.health(0), SiteHealth::kDead);
}

TEST(SiteHealthTest, RecoveryClearsDeadState) {
  SiteHealthMonitor monitor(2);
  const FaultPlan plan = dark(1, 0.0, 10.0);
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 1.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kDead);
  // One recovery is not a flap pattern — the site is trusted again.
  monitor.observe(plan, 12.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  EXPECT_TRUE(monitor.usable(1));
}

TEST(SiteHealthTest, FlappingSiteIsQuarantinedThenReleased) {
  HealthOptions opts;
  opts.dead_after_misses = 2;
  opts.flap_limit = 2;
  opts.flap_window_seconds = 100.0;
  opts.quarantine_seconds = 50.0;
  SiteHealthMonitor monitor(1, opts);
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 0.0, 5.0});
  plan.outages.push_back(OutageWindow{0, 10.0, 15.0});
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 1.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kDead);
  monitor.observe(plan, 6.0);  // dead->alive flap #1
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  monitor.observe(plan, 10.0);
  monitor.observe(plan, 11.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kDead);
  monitor.observe(plan, 16.0);  // flap #2 inside the window: quarantine
  EXPECT_EQ(monitor.health(0), SiteHealth::kQuarantined);
  EXPECT_FALSE(monitor.usable(0));
  EXPECT_EQ(monitor.describe(), "0:Q");
  // Clean probes inside the quarantine period do not release it...
  monitor.observe(plan, 30.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kQuarantined);
  // ...holding still past quarantine_until does (16 + 50 = 66).
  monitor.observe(plan, 70.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
}

TEST(SiteHealthTest, SlowComputeMarksDegradedButUsable) {
  SiteHealthMonitor monitor(2);  // degraded_compute_factor defaults to 2
  FaultPlan plan;
  plan.slowdowns.push_back(SiteSlowdown{1, 0.0, 100.0, 3.0});
  monitor.observe(plan, 5.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kDegraded);
  EXPECT_TRUE(monitor.usable(1));  // degraded still takes buckets
  EXPECT_DOUBLE_EQ(monitor.observed_slowdown(1), 3.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  // Window closes: back to healthy on the next probe.
  monitor.observe(plan, 100.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.observed_slowdown(1), 1.0);
}

TEST(SiteHealthTest, WeakLinkMarksDegraded) {
  SiteHealthMonitor monitor(2);  // degraded_link_factor defaults to 0.5
  FaultPlan plan;
  plan.degradations.push_back(LinkDegradation{0, 0.0, 10.0, 0.4});
  monitor.observe(plan, 1.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kDegraded);
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
}

TEST(SiteHealthTest, ObserveRejectsTimeTravel) {
  SiteHealthMonitor monitor(1);
  monitor.observe(FaultPlan{}, 5.0);
  EXPECT_THROW(monitor.observe(FaultPlan{}, 4.0), bohr::ContractViolation);
}

TEST(SiteHealthTest, SerializeRestoreRoundTrips) {
  HealthOptions opts;
  opts.dead_after_misses = 2;
  SiteHealthMonitor monitor(3, opts);
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{1, 0.0, 100.0});
  plan.slowdowns.push_back(SiteSlowdown{2, 0.0, 100.0, 4.0});
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 1.0);
  const std::string image = monitor.serialize();

  SiteHealthMonitor copy(3, opts);
  copy.restore(image);
  EXPECT_EQ(copy.describe(), monitor.describe());
  EXPECT_EQ(copy.serialize(), image);
  // The restored monitor continues identically.
  monitor.observe(plan, 2.0);
  copy.observe(plan, 2.0);
  EXPECT_EQ(copy.serialize(), monitor.serialize());
}

TEST(SiteHealthTest, RestoreRejectsWrongShape) {
  SiteHealthMonitor monitor(3);
  const std::string image = monitor.serialize();
  SiteHealthMonitor wrong_count(2);
  EXPECT_THROW(wrong_count.restore(image), bohr::ContractViolation);
  SiteHealthMonitor truncated(3);
  EXPECT_THROW(truncated.restore(image.substr(0, image.size() - 1)),
               bohr::ContractViolation);
}

TEST(SiteHealthLongHorizonTest, BackoffSaturatesOverThousandsOfRounds) {
  // A site dark for the whole run: after the exponential ramp, probes
  // settle at exactly the backoff cap. Over thousands of rounds the
  // monitor must neither overflow the backoff exponent nor resume
  // hammering the dead site — the probe cadence stays pinned at the cap.
  HealthOptions opts;
  opts.probe_backoff_base_seconds = 0.5;
  opts.probe_backoff_cap_seconds = 8.0;
  opts.dead_after_misses = 2;
  SiteHealthMonitor monitor(2, opts);
  const FaultPlan plan = dark(1, 0.0, 1e12);
  double now = 0.0;
  for (std::size_t round = 0; round < 5000; ++round) {
    monitor.observe(plan, now);
    now += 1.0;
  }
  EXPECT_EQ(monitor.health(1), SiteHealth::kDead);
  EXPECT_FALSE(monitor.usable(1));
  EXPECT_TRUE(monitor.usable(0));
  // Saturated state is a fixed point: thousands more rounds leave the
  // verdicts unchanged, and the description never flaps.
  const std::string settled = monitor.describe();
  for (std::size_t round = 0; round < 2000; ++round) {
    monitor.observe(plan, now);
    now += 1.0;
    EXPECT_EQ(monitor.describe(), settled);
  }
  EXPECT_EQ(monitor.health(1), SiteHealth::kDead);
  EXPECT_TRUE(monitor.usable(0));
}

TEST(SiteHealthLongHorizonTest, QuarantineReentryAfterCleanThenRelapse) {
  // A site flaps into quarantine, serves its full quarantine cleanly,
  // is trusted again — then relapses. The monitor must re-quarantine on
  // the relapse flaps rather than grandfathering the old clean record.
  HealthOptions opts;
  opts.probe_backoff_base_seconds = 0.5;
  opts.probe_backoff_cap_seconds = 1.0;
  opts.dead_after_misses = 1;
  opts.flap_limit = 2;
  opts.flap_window_seconds = 1000.0;
  opts.quarantine_seconds = 20.0;
  SiteHealthMonitor monitor(1, opts);

  // Phase 1: flap (die/recover) until quarantined.
  double now = 0.0;
  std::size_t guard = 0;
  while (monitor.health(0) != SiteHealth::kQuarantined && guard++ < 200) {
    FaultPlan flap = dark(0, now, now + 2.0);
    monitor.observe(flap, now);        // dark -> miss -> dead
    monitor.observe(flap, now + 1.0);  // still dark
    monitor.observe(FaultPlan{}, now + 3.0);  // recovered
    now += 4.0;
  }
  ASSERT_EQ(monitor.health(0), SiteHealth::kQuarantined);
  EXPECT_FALSE(monitor.usable(0));

  // Phase 2: hold still for the full quarantine -> trusted again.
  const double clean_until = now + opts.quarantine_seconds + 5.0;
  while (now < clean_until) {
    monitor.observe(FaultPlan{}, now);
    now += 1.0;
  }
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  EXPECT_TRUE(monitor.usable(0));

  // Phase 3: relapse — flap again; quarantine must re-engage.
  guard = 0;
  while (monitor.health(0) != SiteHealth::kQuarantined && guard++ < 200) {
    FaultPlan flap = dark(0, now, now + 2.0);
    monitor.observe(flap, now);
    monitor.observe(flap, now + 1.0);
    monitor.observe(FaultPlan{}, now + 3.0);
    now += 4.0;
  }
  EXPECT_EQ(monitor.health(0), SiteHealth::kQuarantined);
  EXPECT_FALSE(monitor.usable(0));
}

TEST(SiteHealthLongHorizonTest, DeadAliveDeadCyclesStayConsistent) {
  // Long alternation of dark and clean stretches (each longer than the
  // flap window, so no quarantine): the monitor must track every edge —
  // dead during dark stretches, healthy during clean ones — without
  // state leaking across thousands of rounds.
  HealthOptions opts;
  opts.probe_backoff_base_seconds = 0.5;
  opts.probe_backoff_cap_seconds = 2.0;
  opts.dead_after_misses = 2;
  opts.flap_window_seconds = 50.0;
  opts.flap_limit = 3;
  SiteHealthMonitor monitor(2, opts);
  const double stretch = 200.0;  // >> flap window
  double now = 0.0;
  for (std::size_t cycle = 0; cycle < 50; ++cycle) {
    const FaultPlan plan = dark(0, now, now + stretch);
    while (now < stretch * (2 * cycle + 1)) {
      monitor.observe(plan, now);
      now += 1.0;
    }
    EXPECT_EQ(monitor.health(0), SiteHealth::kDead) << "cycle " << cycle;
    EXPECT_FALSE(monitor.usable(0));
    while (now < stretch * (2 * cycle + 2)) {
      monitor.observe(FaultPlan{}, now);
      now += 1.0;
    }
    EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy) << "cycle " << cycle;
    EXPECT_TRUE(monitor.usable(0));
    // The untouched site never wavers.
    EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  }
}

}  // namespace
}  // namespace bohr::net

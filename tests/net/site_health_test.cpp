// SiteHealthMonitor: the probe-timeout state machine feeding the elastic
// migration controller. Everything here is deterministic — the "probes"
// are answered by the fault plan, so each test drives the clock by hand
// and asserts exact state transitions.
#include "net/site_health.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

namespace bohr::net {
namespace {

FaultPlan dark(SiteId site, double start, double end) {
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{site, start, end});
  return plan;
}

TEST(SiteHealthTest, AllHealthyUnderInertPlan) {
  SiteHealthMonitor monitor(4);
  monitor.observe(FaultPlan{}, 0.0);
  monitor.observe(FaultPlan{}, 10.0);
  for (SiteId i = 0; i < 4; ++i) {
    EXPECT_EQ(monitor.health(i), SiteHealth::kHealthy);
    EXPECT_TRUE(monitor.usable(i));
    EXPECT_DOUBLE_EQ(monitor.observed_slowdown(i), 1.0);
  }
  EXPECT_EQ(monitor.usable_count(), 4u);
  EXPECT_EQ(monitor.describe(), "0:H 1:H 2:H 3:H");
}

TEST(SiteHealthTest, DeadAfterConsecutiveMisses) {
  HealthOptions opts;
  opts.dead_after_misses = 2;
  SiteHealthMonitor monitor(2, opts);
  const FaultPlan plan = dark(1, 0.0, 100.0);
  monitor.observe(plan, 0.0);  // miss 1: not yet dead
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  monitor.observe(plan, 1.0);  // miss 2: dead
  EXPECT_EQ(monitor.health(1), SiteHealth::kDead);
  EXPECT_FALSE(monitor.usable(1));
  EXPECT_TRUE(monitor.usable(0));
  EXPECT_EQ(monitor.usable_count(), 1u);
  EXPECT_EQ(monitor.describe(), "0:H 1:X");
}

TEST(SiteHealthTest, MissedProbesBackOffExponentially) {
  // base=1s: probes are due at 0 (miss 1, wait 1), 1 (miss 2, wait 2),
  // 3 (miss 3). Observations inside a backoff window must not probe, so
  // with dead_after_misses=3 the site is still alive at t=2.
  HealthOptions opts;
  opts.probe_backoff_base_seconds = 1.0;
  opts.probe_backoff_cap_seconds = 8.0;
  opts.dead_after_misses = 3;
  SiteHealthMonitor monitor(1, opts);
  const FaultPlan plan = dark(0, 0.0, 100.0);
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 0.5);  // backing off — skipped
  monitor.observe(plan, 1.0);  // miss 2
  monitor.observe(plan, 2.0);  // backing off — skipped
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  monitor.observe(plan, 3.0);  // miss 3: dead
  EXPECT_EQ(monitor.health(0), SiteHealth::kDead);
}

TEST(SiteHealthTest, RecoveryClearsDeadState) {
  SiteHealthMonitor monitor(2);
  const FaultPlan plan = dark(1, 0.0, 10.0);
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 1.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kDead);
  // One recovery is not a flap pattern — the site is trusted again.
  monitor.observe(plan, 12.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  EXPECT_TRUE(monitor.usable(1));
}

TEST(SiteHealthTest, FlappingSiteIsQuarantinedThenReleased) {
  HealthOptions opts;
  opts.dead_after_misses = 2;
  opts.flap_limit = 2;
  opts.flap_window_seconds = 100.0;
  opts.quarantine_seconds = 50.0;
  SiteHealthMonitor monitor(1, opts);
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{0, 0.0, 5.0});
  plan.outages.push_back(OutageWindow{0, 10.0, 15.0});
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 1.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kDead);
  monitor.observe(plan, 6.0);  // dead->alive flap #1
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  monitor.observe(plan, 10.0);
  monitor.observe(plan, 11.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kDead);
  monitor.observe(plan, 16.0);  // flap #2 inside the window: quarantine
  EXPECT_EQ(monitor.health(0), SiteHealth::kQuarantined);
  EXPECT_FALSE(monitor.usable(0));
  EXPECT_EQ(monitor.describe(), "0:Q");
  // Clean probes inside the quarantine period do not release it...
  monitor.observe(plan, 30.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kQuarantined);
  // ...holding still past quarantine_until does (16 + 50 = 66).
  monitor.observe(plan, 70.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
}

TEST(SiteHealthTest, SlowComputeMarksDegradedButUsable) {
  SiteHealthMonitor monitor(2);  // degraded_compute_factor defaults to 2
  FaultPlan plan;
  plan.slowdowns.push_back(SiteSlowdown{1, 0.0, 100.0, 3.0});
  monitor.observe(plan, 5.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kDegraded);
  EXPECT_TRUE(monitor.usable(1));  // degraded still takes buckets
  EXPECT_DOUBLE_EQ(monitor.observed_slowdown(1), 3.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kHealthy);
  // Window closes: back to healthy on the next probe.
  monitor.observe(plan, 100.0);
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.observed_slowdown(1), 1.0);
}

TEST(SiteHealthTest, WeakLinkMarksDegraded) {
  SiteHealthMonitor monitor(2);  // degraded_link_factor defaults to 0.5
  FaultPlan plan;
  plan.degradations.push_back(LinkDegradation{0, 0.0, 10.0, 0.4});
  monitor.observe(plan, 1.0);
  EXPECT_EQ(monitor.health(0), SiteHealth::kDegraded);
  EXPECT_EQ(monitor.health(1), SiteHealth::kHealthy);
}

TEST(SiteHealthTest, ObserveRejectsTimeTravel) {
  SiteHealthMonitor monitor(1);
  monitor.observe(FaultPlan{}, 5.0);
  EXPECT_THROW(monitor.observe(FaultPlan{}, 4.0), bohr::ContractViolation);
}

TEST(SiteHealthTest, SerializeRestoreRoundTrips) {
  HealthOptions opts;
  opts.dead_after_misses = 2;
  SiteHealthMonitor monitor(3, opts);
  FaultPlan plan;
  plan.outages.push_back(OutageWindow{1, 0.0, 100.0});
  plan.slowdowns.push_back(SiteSlowdown{2, 0.0, 100.0, 4.0});
  monitor.observe(plan, 0.0);
  monitor.observe(plan, 1.0);
  const std::string image = monitor.serialize();

  SiteHealthMonitor copy(3, opts);
  copy.restore(image);
  EXPECT_EQ(copy.describe(), monitor.describe());
  EXPECT_EQ(copy.serialize(), image);
  // The restored monitor continues identically.
  monitor.observe(plan, 2.0);
  copy.observe(plan, 2.0);
  EXPECT_EQ(copy.serialize(), monitor.serialize());
}

TEST(SiteHealthTest, RestoreRejectsWrongShape) {
  SiteHealthMonitor monitor(3);
  const std::string image = monitor.serialize();
  SiteHealthMonitor wrong_count(2);
  EXPECT_THROW(wrong_count.restore(image), bohr::ContractViolation);
  SiteHealthMonitor truncated(3);
  EXPECT_THROW(truncated.restore(image.substr(0, image.size() - 1)),
               bohr::ContractViolation);
}

}  // namespace
}  // namespace bohr::net

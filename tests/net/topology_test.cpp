#include "net/topology.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "net/bandwidth_estimator.h"

namespace bohr::net {
namespace {

TEST(TopologyTest, PaperTopologyHasTenRegions) {
  const WanTopology topo = make_paper_topology();
  EXPECT_EQ(topo.site_count(), 10u);
  EXPECT_EQ(topo.site(0).name, "Singapore");
  EXPECT_EQ(topo.site(9).name, "Ireland");
}

TEST(TopologyTest, PaperBandwidthTiers) {
  const double base = 10e6;
  const WanTopology topo = make_paper_topology(base);
  // Singapore/Tokyo/Oregon at 5x base.
  for (SiteId s : {0u, 1u, 2u}) EXPECT_DOUBLE_EQ(topo.uplink(s), 5 * base);
  // Virginia/Ohio/Frankfurt at 2x base (so the top tier is 2.5x theirs).
  for (SiteId s : {3u, 4u, 5u}) EXPECT_DOUBLE_EQ(topo.uplink(s), 2 * base);
  // Remaining four at base.
  for (SiteId s : {6u, 7u, 8u, 9u}) EXPECT_DOUBLE_EQ(topo.uplink(s), base);
  EXPECT_DOUBLE_EQ(topo.uplink(0) / topo.uplink(3), 2.5);
  EXPECT_DOUBLE_EQ(topo.uplink(0) / topo.uplink(6), 5.0);
}

TEST(TopologyTest, DownlinkMultiplier) {
  const WanTopology topo = make_paper_topology(10e6, 2.0);
  EXPECT_DOUBLE_EQ(topo.downlink(6), 2.0 * topo.uplink(6));
}

TEST(TopologyTest, MinUplinkSiteIsBaseTier) {
  const WanTopology topo = make_paper_topology();
  EXPECT_GE(topo.min_uplink_site(), 6u);
}

TEST(TopologyTest, TotalUplink) {
  const WanTopology topo = make_paper_topology(1.0);
  EXPECT_DOUBLE_EQ(topo.total_uplink(), 3 * 5.0 + 3 * 2.0 + 4 * 1.0);
}

TEST(TopologyTest, InvalidSiteThrows) {
  const WanTopology topo = make_paper_topology();
  EXPECT_THROW(topo.site(10), ContractViolation);
}

TEST(TopologyTest, NonPositiveBandwidthRejected) {
  EXPECT_THROW(WanTopology({Site{"x", 0.0, 1.0}}), ContractViolation);
  EXPECT_THROW(make_paper_topology(-5.0), ContractViolation);
}

TEST(BandwidthEstimatorTest, FirstObservationTaken) {
  BandwidthEstimator est(2);
  EXPECT_FALSE(est.has_estimate(0));
  est.observe(0, 100.0, 200.0);
  EXPECT_TRUE(est.has_estimate(0));
  EXPECT_DOUBLE_EQ(est.uplink_estimate(0), 100.0);
  EXPECT_DOUBLE_EQ(est.downlink_estimate(0), 200.0);
}

TEST(BandwidthEstimatorTest, EwmaConverges) {
  BandwidthEstimator est(1, 0.5);
  est.observe(0, 100.0, 100.0);
  for (int i = 0; i < 20; ++i) est.observe(0, 200.0, 200.0);
  EXPECT_NEAR(est.uplink_estimate(0), 200.0, 1.0);
}

TEST(BandwidthEstimatorTest, NoisyObservationTracksTruth) {
  const WanTopology truth = make_paper_topology(10e6);
  BandwidthEstimator est(truth.site_count(), 0.3);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) est.observe_noisy(truth, 0.05, rng);
  for (SiteId s = 0; s < truth.site_count(); ++s) {
    EXPECT_NEAR(est.uplink_estimate(s) / truth.uplink(s), 1.0, 0.15);
  }
}

TEST(BandwidthEstimatorTest, EstimatedTopologySnapshot) {
  const WanTopology truth = make_paper_topology(10e6);
  BandwidthEstimator est(truth.site_count());
  Rng rng(4);
  est.observe_noisy(truth, 0.0, rng);
  const WanTopology snap = est.estimated_topology(truth);
  EXPECT_EQ(snap.site_count(), truth.site_count());
  EXPECT_DOUBLE_EQ(snap.uplink(0), truth.uplink(0));
  EXPECT_EQ(snap.site(3).name, "Virginia");
}

}  // namespace
}  // namespace bohr::net

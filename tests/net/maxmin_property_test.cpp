// Property tests for the max-min fair flow allocator: feasibility,
// bottleneck tightness, and water-filling fairness on random instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "net/transfer.h"

namespace bohr::net {
namespace {

struct Instance {
  WanTopology topo;
  std::vector<Flow> flows;
};

Instance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n_sites = 3 + rng.below(6);
  std::vector<Site> sites;
  for (std::size_t s = 0; s < n_sites; ++s) {
    sites.push_back(Site{"s" + std::to_string(s), rng.uniform(5.0, 100.0),
                         rng.uniform(5.0, 100.0)});
  }
  WanTopology topo(std::move(sites));
  std::vector<Flow> flows;
  const std::size_t n_flows = 2 + rng.below(12);
  for (std::size_t f = 0; f < n_flows; ++f) {
    const SiteId src = rng.below(n_sites);
    SiteId dst = rng.below(n_sites);
    if (dst == src) dst = (dst + 1) % n_sites;
    flows.push_back(Flow{src, dst, rng.uniform(10.0, 500.0), 0.0});
  }
  return {std::move(topo), std::move(flows)};
}

TEST(MaxMinPropertyTest, RatesAreFeasibleOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Instance inst = random_instance(seed);
    const auto rates = max_min_rates(inst.topo, inst.flows);
    std::vector<double> up(inst.topo.site_count(), 0.0);
    std::vector<double> down(inst.topo.site_count(), 0.0);
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
      EXPECT_GT(rates[f], 0.0) << "seed " << seed;
      up[inst.flows[f].src] += rates[f];
      down[inst.flows[f].dst] += rates[f];
    }
    for (SiteId s = 0; s < inst.topo.site_count(); ++s) {
      EXPECT_LE(up[s], inst.topo.uplink(s) * (1 + 1e-9)) << "seed " << seed;
      EXPECT_LE(down[s], inst.topo.downlink(s) * (1 + 1e-9))
          << "seed " << seed;
    }
  }
}

TEST(MaxMinPropertyTest, EveryFlowHasASaturatedLink) {
  // Max-min optimality: each flow crosses at least one link that is
  // fully utilized (otherwise its rate could grow).
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Instance inst = random_instance(seed);
    const auto rates = max_min_rates(inst.topo, inst.flows);
    std::vector<double> up(inst.topo.site_count(), 0.0);
    std::vector<double> down(inst.topo.site_count(), 0.0);
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
      up[inst.flows[f].src] += rates[f];
      down[inst.flows[f].dst] += rates[f];
    }
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
      const double up_util =
          up[inst.flows[f].src] / inst.topo.uplink(inst.flows[f].src);
      const double down_util =
          down[inst.flows[f].dst] / inst.topo.downlink(inst.flows[f].dst);
      EXPECT_GT(std::max(up_util, down_util), 1.0 - 1e-6)
          << "seed " << seed << " flow " << f;
    }
  }
}

TEST(MaxMinPropertyTest, IncreasingOneRateRequiresDecreasingASmallerOne) {
  // Water-filling characterization: a flow's rate is limited by a link
  // where it is among the largest shares — no flow on a saturated link
  // both exceeds it and could donate.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Instance inst = random_instance(seed);
    const auto rates = max_min_rates(inst.topo, inst.flows);
    // For each flow, find its binding link; every other flow on that
    // link with a larger rate would have to shrink for this one to grow,
    // which max-min forbids unless the other is larger (it is).
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
      double up_total = 0.0;
      double down_total = 0.0;
      for (std::size_t g = 0; g < inst.flows.size(); ++g) {
        if (inst.flows[g].src == inst.flows[f].src) up_total += rates[g];
        if (inst.flows[g].dst == inst.flows[f].dst) down_total += rates[g];
      }
      const bool up_binding =
          up_total >= inst.topo.uplink(inst.flows[f].src) * (1 - 1e-6);
      const bool down_binding =
          down_total >= inst.topo.downlink(inst.flows[f].dst) * (1 - 1e-6);
      EXPECT_TRUE(up_binding || down_binding) << "seed " << seed;
    }
  }
}

TEST(MaxMinPropertyTest, SimulationConservesBytes) {
  // Total bytes delivered equals total bytes requested: finish times
  // integrate the rate exactly.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const Instance inst = random_instance(seed);
    const auto results = simulate_flows(inst.topo, inst.flows);
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
      ASSERT_GT(results[f].finish_time, 0.0);
      // mean_rate * duration == bytes (by construction of mean_rate);
      // sanity: duration at least bytes / min(cap).
      const double cap = std::min(inst.topo.uplink(inst.flows[f].src),
                                  inst.topo.downlink(inst.flows[f].dst));
      EXPECT_GE(results[f].finish_time + 1e-9, inst.flows[f].bytes / cap)
          << "seed " << seed;
    }
  }
}

TEST(MaxMinPropertyTest, SingleFlowGetsFullBottleneck) {
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    Instance inst = random_instance(seed);
    inst.flows.resize(1);
    const auto rates = max_min_rates(inst.topo, inst.flows);
    const double cap = std::min(inst.topo.uplink(inst.flows[0].src),
                                inst.topo.downlink(inst.flows[0].dst));
    EXPECT_NEAR(rates[0], cap, cap * 1e-9);
  }
}

}  // namespace
}  // namespace bohr::net

// Shared-state concurrency of the serving loop, written to run under
// ThreadSanitizer: snapshot readers racing the columnar cache's CAS
// install, and concurrent batches executing over one controller's cube
// and similarity state. These spawn raw std::threads (not the pooled
// runtime) so the races exist at every BOHR_THREADS setting.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "olap/cube.h"
#include "olap/cube_columns.h"
#include "serve/server.h"

namespace bohr::serve {
namespace {

TEST(ServeConcurrencyTest, ColumnsReadersRaceTheCacheInstall) {
  olap::OlapCube cube({olap::Dimension("a"), olap::Dimension("b")});
  Rng rng(21);
  for (int i = 0; i < 400; ++i) {
    cube.insert({rng.below(13), rng.below(7)}, rng.uniform(-1.0, 1.0));
  }

  // Rounds of: mutate (which invalidates the columnar cache), then N
  // readers race to CAS-install the rebuilt snapshot. Every reader must
  // observe a complete snapshot of the post-mutation cube.
  constexpr int kReaders = 8;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    cube.insert({rng.below(13), rng.below(7)}, rng.uniform(-1.0, 1.0));
    const std::size_t expected_rows = cube.cell_count();
    std::atomic<int> ready{0};
    std::vector<std::shared_ptr<const olap::CubeColumns>> seen(kReaders);
    std::vector<std::thread> threads;
    threads.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        ready.fetch_add(1);
        while (ready.load() < kReaders) {
        }
        seen[r] = cube.columns();
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& snapshot : seen) {
      ASSERT_NE(snapshot, nullptr);
      EXPECT_EQ(snapshot->num_rows(), expected_rows);
    }
  }
}

core::Controller prepared_controller() {
  core::ExperimentConfig cfg;
  cfg.workload = workload::WorkloadKind::BigData;
  cfg.n_datasets = 2;
  cfg.generator.sites = 10;
  cfg.generator.rows_per_site = 120;
  cfg.generator.gb_per_site = 40.0 / 12.0;
  cfg.base_bandwidth = 125e6;
  cfg.lag_seconds = 60.0;
  cfg.job.partition_records = 24;
  cfg.job.machine.executors = 4;
  cfg.seed = 13;
  core::Controller controller =
      core::make_controller(cfg, core::Strategy::Bohr);
  controller.prepare();
  return controller;
}

TEST(ServeConcurrencyTest, ConcurrentSingleQueriesMatchSerialBaseline) {
  const core::Controller controller = prepared_controller();

  // Serial baseline: each query under its own (seed, seq) RNG stream.
  constexpr std::size_t kQueries = 12;
  std::vector<double> expected(kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) {
    Rng rng(hash_combine(0xBEEF, q));
    expected[q] = controller
                      .run_single_query(q % 2, 0, /*reduce_buckets=*/nullptr,
                                        rng)
                      .qct_seconds;
  }

  // The same queries raced across raw threads over the shared
  // controller (cube state, similarity metadata, topology) must be
  // bit-identical — run_single_query is const and re-entrant.
  std::vector<double> got(kQueries);
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (std::size_t q = 0; q < kQueries; ++q) {
    threads.emplace_back([&, q] {
      Rng rng(hash_combine(0xBEEF, q));
      got[q] = controller
                   .run_single_query(q % 2, 0, /*reduce_buckets=*/nullptr, rng)
                   .qct_seconds;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(got, expected);
}

TEST(ServeConcurrencyTest, ConcurrentServingRunsShareOneController) {
  // Two whole serving loops over the same prepared controller at once:
  // the end-to-end shared-state race, each run still reproducing its
  // canonical digest.
  const core::Controller controller = prepared_controller();
  ServeOptions opts;
  opts.arrivals.tenants = 2;
  opts.arrivals.arrival_rate_qps = 1.0;
  opts.arrivals.duration_seconds = 8.0;
  opts.arrivals.seed = 13;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_seconds = 0.3;
  opts.slots = 2;
  opts.migration_period_seconds = 0.0;
  const ServeReport baseline = run_serving(controller, opts);

  ServeReport a, b;
  std::thread ta([&] { a = run_serving(controller, opts); });
  std::thread tb([&] { b = run_serving(controller, opts); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.qct.digest(), baseline.qct.digest());
  EXPECT_EQ(b.qct.digest(), baseline.qct.digest());
}

}  // namespace
}  // namespace bohr::serve

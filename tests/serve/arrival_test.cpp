#include "serve/arrival.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "serve/admission.h"

namespace bohr::serve {
namespace {

ArrivalConfig small_config() {
  ArrivalConfig cfg;
  cfg.tenants = 3;
  cfg.arrival_rate_qps = 5.0;
  cfg.duration_seconds = 40.0;
  cfg.seed = 11;
  return cfg;
}

TEST(ArrivalTest, TraceIsSortedAndSequenced) {
  const std::vector<std::size_t> types = {3, 3, 2, 5};
  const auto trace = generate_arrivals(small_config(), 4, types);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, i);
    EXPECT_GE(trace[i].time, 0.0);
    EXPECT_LT(trace[i].time, 40.0);
    EXPECT_LT(trace[i].tenant, 3u);
    EXPECT_LT(trace[i].dataset, 4u);
    EXPECT_LT(trace[i].type_spec, types[trace[i].dataset]);
    EXPECT_GE(trace[i].work_scale, 1.0);
    EXPECT_LE(trace[i].work_scale, small_config().work_max);
    if (i > 0) EXPECT_LE(trace[i - 1].time, trace[i].time);
  }
}

TEST(ArrivalTest, SameSeedSameTrace) {
  const auto a = generate_arrivals(small_config(), 4, {3, 3, 2, 5});
  const auto b = generate_arrivals(small_config(), 4, {3, 3, 2, 5});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].dataset, b[i].dataset);
    EXPECT_EQ(a[i].type_spec, b[i].type_spec);
    EXPECT_EQ(a[i].work_scale, b[i].work_scale);
  }
  auto cfg = small_config();
  cfg.seed = 12;
  const auto c = generate_arrivals(cfg, 4, {3, 3, 2, 5});
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time != c[i].time;
  }
  EXPECT_TRUE(differs);
}

TEST(ArrivalTest, ArrivalCountTracksOfferedLoad) {
  // ~rate * duration * tenants in expectation; allow a wide band.
  const auto trace = generate_arrivals(small_config(), 2, {2, 2});
  const double expected = 5.0 * 40.0 * 3.0;
  EXPECT_GT(static_cast<double>(trace.size()), 0.5 * expected);
  EXPECT_LT(static_cast<double>(trace.size()), 1.5 * expected);
}

TEST(ArrivalTest, DatasetPopularityIsSkewedPerTenant) {
  // With Zipf skew > 1 each tenant must favour its own rotated head
  // dataset over the tail.
  auto cfg = small_config();
  cfg.tenants = 2;
  cfg.duration_seconds = 400.0;
  cfg.dataset_skew = 1.4;
  const auto trace = generate_arrivals(cfg, 6, {2, 2, 2, 2, 2, 2});
  std::map<std::size_t, std::map<std::size_t, std::size_t>> counts;
  for (const auto& q : trace) ++counts[q.tenant][q.dataset];
  // Tenant t's head dataset is rank 0 rotated by t.
  EXPECT_GT(counts[0][0], counts[0][3]);
  EXPECT_GT(counts[1][1], counts[1][4]);
}

TEST(AdmissionTest, BatchesCloseOnSizeOrTimeout) {
  std::vector<QueryArrival> trace;
  const auto arrival = [&](double t, std::size_t tenant) {
    QueryArrival q;
    q.time = t;
    q.tenant = tenant;
    q.seq = trace.size();
    trace.push_back(q);
  };
  // Tenant 0: three quick queries fill a size-3 batch at t=0.2; a
  // fourth at t=5 opens a new batch that times out at 5 + 0.5.
  arrival(0.0, 0);
  arrival(0.1, 0);
  arrival(0.2, 0);
  arrival(5.0, 0);
  // Tenant 1: two queries 0.3 apart stay in one timeout-closed batch.
  arrival(1.0, 1);
  arrival(1.3, 1);

  BatchingPolicy policy;
  policy.max_batch = 3;
  policy.max_delay_seconds = 0.5;
  const auto batches = form_batches(trace, 2, policy);
  ASSERT_EQ(batches.size(), 3u);
  // Canonical order is by close time.
  EXPECT_EQ(batches[0].tenant, 0u);
  EXPECT_EQ(batches[0].queries.size(), 3u);
  EXPECT_DOUBLE_EQ(batches[0].close_time, 0.2);  // closed by size
  EXPECT_EQ(batches[1].tenant, 1u);
  EXPECT_EQ(batches[1].queries.size(), 2u);
  EXPECT_DOUBLE_EQ(batches[1].close_time, 1.5);  // closed by timeout
  EXPECT_EQ(batches[2].tenant, 0u);
  EXPECT_EQ(batches[2].queries.size(), 1u);
  EXPECT_DOUBLE_EQ(batches[2].close_time, 5.5);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(batches[i].index, i);
  }
}

TEST(AdmissionTest, EveryQueryLandsInExactlyOneBatch) {
  const auto trace = generate_arrivals(small_config(), 4, {3, 3, 2, 5});
  BatchingPolicy policy;
  policy.max_batch = 4;
  policy.max_delay_seconds = 0.3;
  const auto batches = form_batches(trace, 3, policy);
  std::vector<bool> seen(trace.size(), false);
  for (const auto& b : batches) {
    EXPECT_GE(b.close_time, b.open_time);
    EXPECT_LE(b.queries.size(), policy.max_batch);
    for (const std::size_t qi : b.queries) {
      ASSERT_LT(qi, trace.size());
      EXPECT_FALSE(seen[qi]);
      seen[qi] = true;
      EXPECT_EQ(trace[qi].tenant, b.tenant);
      EXPECT_GE(trace[qi].time, b.open_time);
      EXPECT_LE(trace[qi].time, b.close_time + 1e-12);
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace bohr::serve

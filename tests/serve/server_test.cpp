#include "serve/server.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/experiment.h"

namespace bohr::serve {
namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.workload = workload::WorkloadKind::BigData;
  cfg.n_datasets = 2;
  cfg.generator.sites = 10;
  cfg.generator.rows_per_site = 120;
  cfg.generator.gb_per_site = 40.0 / 12.0;
  cfg.base_bandwidth = 125e6;
  cfg.lag_seconds = 60.0;
  cfg.job.partition_records = 24;
  cfg.job.machine.executors = 4;
  cfg.seed = 9;
  return cfg;
}

ServeOptions small_options() {
  ServeOptions opts;
  opts.arrivals.tenants = 3;
  opts.arrivals.arrival_rate_qps = 2.0;
  opts.arrivals.duration_seconds = 15.0;
  opts.arrivals.seed = 9;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_seconds = 0.3;
  opts.slots = 4;
  opts.migration_period_seconds = 5.0;
  return opts;
}

core::Controller prepared_controller() {
  core::Controller controller =
      core::make_controller(small_config(), core::Strategy::Bohr);
  controller.prepare();
  return controller;
}

TEST(ServerTest, ReportsTailLatenciesAndThroughput) {
  const core::Controller controller = prepared_controller();
  const ServeReport report = run_serving(controller, small_options());
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.batches, 0u);
  EXPECT_EQ(report.qct.count(), report.queries);
  EXPECT_GT(report.summary.p50_seconds, 0.0);
  EXPECT_LE(report.summary.p50_seconds, report.summary.p95_seconds);
  EXPECT_LE(report.summary.p95_seconds, report.summary.p99_seconds);
  EXPECT_LE(report.summary.p99_seconds, report.summary.max_seconds);
  EXPECT_GT(report.summary.throughput_qps, 0.0);
  EXPECT_GT(report.makespan_seconds, 0.0);
  ASSERT_EQ(report.tenant_summary.size(), 3u);
  std::size_t tenant_total = 0;
  for (const auto& t : report.tenant_summary) tenant_total += t.count;
  EXPECT_EQ(tenant_total, report.queries);
  EXPECT_GT(report.migration_epochs, 0u);
}

TEST(ServerTest, SameSeedSameDigest) {
  const core::Controller controller = prepared_controller();
  const ServeReport a = run_serving(controller, small_options());
  const ServeReport b = run_serving(controller, small_options());
  EXPECT_EQ(a.qct.digest(), b.qct.digest());
  EXPECT_EQ(a.qct.samples(), b.qct.samples());
  auto opts = small_options();
  opts.arrivals.seed = 10;
  const ServeReport c = run_serving(controller, opts);
  EXPECT_NE(a.qct.digest(), c.qct.digest());
}

TEST(ServerTest, DigestInvariantAcrossThreadCounts) {
  const core::Controller controller = prepared_controller();
  const std::size_t before = thread_count();
  set_thread_count(1);
  const ServeReport serial = run_serving(controller, small_options());
  set_thread_count(4);
  const ServeReport pooled = run_serving(controller, small_options());
  set_thread_count(before);
  EXPECT_EQ(serial.qct.digest(), pooled.qct.digest());
  EXPECT_EQ(serial.qct.samples(), pooled.qct.samples());
  EXPECT_EQ(serial.makespan_seconds, pooled.makespan_seconds);
}

TEST(ServerTest, HigherLoadDoesNotShrinkTailLatency) {
  const core::Controller controller = prepared_controller();
  auto light = small_options();
  light.arrivals.arrival_rate_qps = 0.5;
  auto heavy = small_options();
  heavy.arrivals.arrival_rate_qps = 6.0;
  const ServeReport l = run_serving(controller, light);
  const ServeReport h = run_serving(controller, heavy);
  EXPECT_GT(h.queries, l.queries);
  // More offered load onto the same slots cannot improve the tail.
  EXPECT_GE(h.summary.p99_seconds, l.summary.p99_seconds);
}

TEST(ServerTest, MigrationCadenceStepsPerEpoch) {
  const core::Controller controller = prepared_controller();
  auto opts = small_options();
  opts.migration_period_seconds = 2.0;
  const ServeReport fine = run_serving(controller, opts);
  opts.migration_period_seconds = 0.0;
  const ServeReport off = run_serving(controller, opts);
  EXPECT_GT(fine.migration_epochs, 1u);
  EXPECT_EQ(off.migration_epochs, 0u);
  EXPECT_EQ(off.migrations, 0u);
  EXPECT_EQ(off.evacuations, 0u);
}

TEST(ServerTest, MoreSlotsDoNotHurtMakespan) {
  const core::Controller controller = prepared_controller();
  auto narrow = small_options();
  narrow.slots = 1;
  auto wide = small_options();
  wide.slots = 8;
  const ServeReport n = run_serving(controller, narrow);
  const ServeReport w = run_serving(controller, wide);
  EXPECT_LE(w.makespan_seconds, n.makespan_seconds);
  EXPECT_LE(w.summary.p99_seconds, n.summary.p99_seconds);
}

}  // namespace
}  // namespace bohr::serve

// End-to-end integration: the full pipeline (generate -> cubes -> probes
// -> placement -> movement -> execute) must reproduce the paper's
// qualitative results on a scaled-down setup.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace bohr::core {
namespace {

ExperimentConfig small_config(workload::WorkloadKind kind) {
  // The benchmark configuration (see bench/bench_common.cpp): movement
  // budget ~18% of a site_s data, QCT in the paper_s band.
  ExperimentConfig cfg;
  cfg.workload = kind;
  cfg.n_datasets = 12;
  cfg.generator.sites = 10;
  cfg.generator.rows_per_site = 480;
  cfg.generator.gb_per_site = 40.0 / 12.0;
  cfg.base_bandwidth = 125e6;
  cfg.lag_seconds = 60.0;
  cfg.job.partition_records = 24;
  cfg.job.machine.executors = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(ExperimentTest, RunsAllSchemes) {
  const auto run = run_workload(
      small_config(workload::WorkloadKind::BigData),
      {Strategy::Iridium, Strategy::IridiumC, Strategy::BohrSim,
       Strategy::BohrJoint, Strategy::BohrRdd, Strategy::Bohr});
  EXPECT_EQ(run.outcomes.size(), 6u);
  for (const auto& o : run.outcomes) {
    EXPECT_GT(o.avg_qct_seconds, 0.0) << to_string(o.strategy);
    EXPECT_EQ(o.site_shuffle_bytes.size(), 10u);
    EXPECT_FALSE(o.qct_by_kind.empty());
  }
}

TEST(ExperimentTest, BohrBeatsIridiumCOnQct) {
  // The headline result (Fig 6): Bohr's QCT beats Iridium-C.
  const auto run =
      run_workload(small_config(workload::WorkloadKind::BigData),
                   {Strategy::IridiumC, Strategy::Bohr});
  EXPECT_LT(run.outcome(Strategy::Bohr).avg_qct_seconds,
            run.outcome(Strategy::IridiumC).avg_qct_seconds);
}

TEST(ExperimentTest, BohrReducesMoreIntermediateData) {
  // Fig 8: Bohr's mean per-site data reduction beats both baselines.
  const auto run = run_workload(
      small_config(workload::WorkloadKind::BigData),
      {Strategy::Iridium, Strategy::IridiumC, Strategy::Bohr});
  const double bohr = run.mean_data_reduction_percent(Strategy::Bohr);
  EXPECT_GT(bohr, run.mean_data_reduction_percent(Strategy::IridiumC));
  EXPECT_GT(bohr, run.mean_data_reduction_percent(Strategy::Iridium));
  EXPECT_GT(bohr, 0.0);
}

TEST(ExperimentTest, SimilarityAloneHelps) {
  // §8.3.1: Bohr-Sim must beat Iridium-C (same placement heuristic, only
  // the CHOICE of moved records differs).
  const auto run = run_workload(small_config(workload::WorkloadKind::BigData),
                                {Strategy::IridiumC, Strategy::BohrSim});
  EXPECT_GE(run.mean_data_reduction_percent(Strategy::BohrSim),
            run.mean_data_reduction_percent(Strategy::IridiumC));
}

TEST(ExperimentTest, JointPlacementAddsOnTopOfSimilarity) {
  // §8.3.2: Bohr-Joint improves over Bohr-Sim.
  const auto run = run_workload(small_config(workload::WorkloadKind::BigData),
                                {Strategy::BohrSim, Strategy::BohrJoint});
  EXPECT_LE(run.outcome(Strategy::BohrJoint).avg_qct_seconds,
            run.outcome(Strategy::BohrSim).avg_qct_seconds * 1.05);
}

TEST(ExperimentTest, AllWorkloadsComplete) {
  for (const auto kind :
       {workload::WorkloadKind::BigData, workload::WorkloadKind::TpcDs,
        workload::WorkloadKind::Facebook}) {
    const auto run =
        run_workload(small_config(kind), {Strategy::IridiumC, Strategy::Bohr});
    EXPECT_GT(run.outcome(Strategy::Bohr).avg_qct_seconds, 0.0);
    EXPECT_GT(run.outcome(Strategy::IridiumC).avg_qct_seconds, 0.0);
  }
}

TEST(ExperimentTest, VanillaBaselineNonZero) {
  const auto run = run_workload(small_config(workload::WorkloadKind::BigData),
                                {Strategy::Bohr});
  double total = 0.0;
  for (const double b : run.vanilla_site_shuffle_bytes) total += b;
  EXPECT_GT(total, 0.0);
}

TEST(ExperimentTest, MovementStaysWithinLag) {
  const auto run = run_workload(small_config(workload::WorkloadKind::BigData),
                                {Strategy::Bohr});
  EXPECT_TRUE(run.outcome(Strategy::Bohr).prep.movement_within_lag);
}

TEST(ExperimentTest, ProbeSizeImprovesReduction) {
  // Fig 12's shape: larger k must not reduce the data reduction.
  auto cfg = small_config(workload::WorkloadKind::BigData);
  cfg.probe_k = 5;
  const auto small_k = run_workload(cfg, {Strategy::Bohr});
  cfg.probe_k = 60;
  const auto large_k = run_workload(cfg, {Strategy::Bohr});
  EXPECT_GE(large_k.mean_data_reduction_percent(Strategy::Bohr) + 1.0,
            small_k.mean_data_reduction_percent(Strategy::Bohr));
}

TEST(ExperimentTest, StorageReportShapes) {
  const auto cfg = small_config(workload::WorkloadKind::BigData);
  const auto iridium = compute_storage(cfg, Strategy::Iridium);
  const auto iridium_c = compute_storage(cfg, Strategy::IridiumC);
  const auto bohr = compute_storage(cfg, Strategy::Bohr);
  // Table 6 ordering: Iridium < Iridium-C < Bohr in per-node storage.
  EXPECT_LT(iridium.storage_per_node_gb, iridium_c.storage_per_node_gb);
  EXPECT_LT(iridium_c.storage_per_node_gb, bohr.storage_per_node_gb);
  EXPECT_DOUBLE_EQ(iridium.olap_cubes_gb, 0.0);
  EXPECT_GT(bohr.similarity_metadata_gb, 0.0);
  // Cube systems need less data at query time than raw-data systems.
  EXPECT_LT(bohr.needed_by_queries_gb, iridium.needed_by_queries_gb);
}

TEST(ExperimentTest, DynamicDatasetsCloseToNormal) {
  // Table 7: dynamic QCT within a modest factor of the normal setting.
  auto cfg = small_config(workload::WorkloadKind::TpcDs);
  cfg.n_datasets = 2;
  const auto result = run_dynamic_experiment(cfg, /*n_batches=*/6,
                                             /*initial_fraction=*/0.25,
                                             /*replan_every=*/3);
  EXPECT_GT(result.queries_run, 0u);
  EXPECT_GT(result.replans, 1u);
  EXPECT_GT(result.normal_avg_qct, 0.0);
  EXPECT_GT(result.dynamic_avg_qct, 0.0);
  EXPECT_LT(result.dynamic_avg_qct, result.normal_avg_qct * 1.6);
}

TEST(ExperimentTest, RepeatedRunsPoolPerQuerySamples) {
  // Regression: the repeated harness used to average per-run means,
  // weighting a small run equally with a large one. It must aggregate
  // over the pooled per-query samples instead.
  auto cfg = small_config(workload::WorkloadKind::BigData);
  cfg.n_datasets = 4;
  const std::size_t n_runs = 3;
  const std::vector<Strategy> strategies = {Strategy::IridiumC};

  LatencyRecorder pooled;
  double mean_of_means = 0.0;
  std::vector<std::size_t> run_sizes;
  for (std::size_t i = 0; i < n_runs; ++i) {
    ExperimentConfig run_cfg = cfg;
    run_cfg.seed = hash_combine(cfg.seed, 0xF00D + i);
    const WorkloadRun run = run_workload(run_cfg, strategies);
    const StrategyOutcome& o = run.outcome(Strategy::IridiumC);
    pooled.merge(o.qct);
    mean_of_means += o.qct.mean() / static_cast<double>(n_runs);
    run_sizes.push_back(o.qct.count());
  }
  // The query mix samples 2-10 queries per dataset from a seed-derived
  // RNG, so the three runs really are unequal in size.
  EXPECT_TRUE(run_sizes[0] != run_sizes[1] || run_sizes[1] != run_sizes[2])
      << run_sizes[0] << " " << run_sizes[1] << " " << run_sizes[2];

  const auto repeated = run_workload_repeated(cfg, strategies, n_runs);
  ASSERT_EQ(repeated.size(), 1u);
  EXPECT_EQ(repeated[0].total_queries, pooled.count());
  EXPECT_DOUBLE_EQ(repeated[0].mean_qct_seconds, pooled.mean());
  EXPECT_DOUBLE_EQ(repeated[0].qct_summary.p99_seconds,
                   pooled.summarize(0.0).p99_seconds);
  // With unequal run sizes the buggy aggregation lands elsewhere.
  EXPECT_NE(repeated[0].mean_qct_seconds, mean_of_means);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  // QCT embeds measured wall-clock LP time (§8.5), so determinism is
  // asserted on the simulated byte counts instead.
  const auto cfg = small_config(workload::WorkloadKind::BigData);
  const auto a = run_workload(cfg, {Strategy::BohrJoint});
  const auto b = run_workload(cfg, {Strategy::BohrJoint});
  EXPECT_EQ(a.outcome(Strategy::BohrJoint).site_shuffle_bytes,
            b.outcome(Strategy::BohrJoint).site_shuffle_bytes);
  EXPECT_DOUBLE_EQ(a.outcome(Strategy::BohrJoint).wan_shuffle_bytes,
                   b.outcome(Strategy::BohrJoint).wan_shuffle_bytes);
}

}  // namespace
}  // namespace bohr::core

// Differential suite for the sparse revised simplex against the dense
// tableau oracle, plus dual-extraction edge cases, warm starts,
// incremental constraint updates and partial pricing.
#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "lp/basis_lu.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/sparse.h"

namespace bohr::lp {
namespace {

SimplexOptions dense_options() {
  SimplexOptions o;
  o.engine = Engine::Dense;
  return o;
}

SimplexOptions revised_options() {
  SimplexOptions o;
  o.engine = Engine::Revised;
  return o;
}

/// Solves with both engines and checks full agreement: status,
/// iteration count, objective, primal values and duals.
void expect_engines_agree(const LpProblem& p, const char* label) {
  SCOPED_TRACE(label);
  const LpSolution dense = solve(p, dense_options());
  const LpSolution revised = solve(p, revised_options());
  ASSERT_EQ(dense.status, revised.status);
  if (!dense.optimal()) return;
  EXPECT_EQ(dense.iterations, revised.iterations);
  EXPECT_NEAR(dense.objective, revised.objective, 1e-9);
  ASSERT_EQ(dense.values.size(), revised.values.size());
  for (std::size_t v = 0; v < dense.values.size(); ++v) {
    EXPECT_NEAR(dense.values[v], revised.values[v], 1e-9) << "var " << v;
  }
  ASSERT_EQ(dense.duals.size(), revised.duals.size());
  for (std::size_t r = 0; r < dense.duals.size(); ++r) {
    EXPECT_NEAR(dense.duals[r], revised.duals[r], 1e-9) << "row " << r;
  }
}

double dual_objective(const LpProblem& p, const LpSolution& sol) {
  double z = 0.0;
  for (std::size_t r = 0; r < p.constraint_count(); ++r) {
    z += sol.duals[r] * p.rows()[r].rhs;
  }
  return z;
}

TEST(RevisedSimplexTest, MatchesDenseOnSmallLp) {
  LpProblem p;
  const VarId x = p.add_variable("x", -3.0);
  const VarId y = p.add_variable("y", -5.0);
  p.add_constraint({{x, 1.0}}, Relation::LessEq, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::LessEq, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::LessEq, 18.0);
  expect_engines_agree(p, "wyndor");
  const LpSolution sol = solve(p, revised_options());
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.value(x), 2.0, 1e-9);
  EXPECT_NEAR(sol.value(y), 6.0, 1e-9);
}

TEST(RevisedSimplexTest, RandomDifferentialSuite) {
  std::mt19937 rng(20180412);
  std::uniform_int_distribution<int> rows_dist(1, 10);
  std::uniform_int_distribution<int> vars_dist(2, 12);
  std::uniform_int_distribution<int> rel_dist(0, 2);
  std::uniform_real_distribution<double> coeff(-3.0, 3.0);
  std::uniform_real_distribution<double> rhs_dist(-5.0, 5.0);
  std::uniform_real_distribution<double> obj(-2.0, 2.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  int optimal_count = 0;
  int infeasible_count = 0;
  int unbounded_count = 0;
  for (int trial = 0; trial < 300; ++trial) {
    LpProblem p;
    const int nv = vars_dist(rng);
    const int nr = rows_dist(rng);
    for (int v = 0; v < nv; ++v) p.add_variable("v", obj(rng));
    for (int r = 0; r < nr; ++r) {
      std::vector<Term> terms;
      for (int v = 0; v < nv; ++v) {
        if (unif(rng) < 0.6) {
          terms.push_back({static_cast<VarId>(v), coeff(rng)});
        }
      }
      if (terms.empty()) terms.push_back({0, coeff(rng)});
      p.add_constraint(std::move(terms),
                       static_cast<Relation>(rel_dist(rng)), rhs_dist(rng));
    }
    SCOPED_TRACE(trial);
    const LpSolution dense = solve(p, dense_options());
    expect_engines_agree(p, "random");
    switch (dense.status) {
      case SolveStatus::Optimal:
        ++optimal_count;
        break;
      case SolveStatus::Infeasible:
        ++infeasible_count;
        break;
      case SolveStatus::Unbounded:
        ++unbounded_count;
        break;
      default:
        break;
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GT(optimal_count, 20);
  EXPECT_GT(infeasible_count, 10);
  EXPECT_GT(unbounded_count, 10);
}

TEST(RevisedSimplexTest, NegativeRhsDualConvention) {
  // -x - y <= -4 (i.e. x + y >= 4) exercises the rhs-negation path; the
  // dual must be reported w.r.t. the ORIGINAL right-hand side.
  LpProblem p;
  const VarId x = p.add_variable("x", 2.0);
  const VarId y = p.add_variable("y", 3.0);
  p.add_constraint({{x, -1.0}, {y, -1.0}}, Relation::LessEq, -4.0);
  expect_engines_agree(p, "neg-rhs");
  const LpSolution sol = solve(p, revised_options());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
  EXPECT_NEAR(sol.dual(0), -2.0, 1e-9);  // dz*/db: raising b toward 0 relaxes
  EXPECT_NEAR(dual_objective(p, sol), sol.objective, 1e-9);
}

TEST(RevisedSimplexTest, EqualityRowDuals) {
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  const VarId y = p.add_variable("y", 4.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
  p.add_constraint({{y, 1.0}}, Relation::GreaterEq, 1.0);
  expect_engines_agree(p, "equality");
  const LpSolution sol = solve(p, revised_options());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 6.0, 1e-9);
  EXPECT_NEAR(dual_objective(p, sol), sol.objective, 1e-9);
}

TEST(RevisedSimplexTest, RedundantRowKeepsBasicArtificial) {
  // The duplicated equality is redundant: after phase 1 its artificial
  // stays basic at zero (no pivotable column), which both engines must
  // tolerate and report identical duals for.
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  const VarId y = p.add_variable("y", 2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
  p.add_constraint({{x, 1.0}}, Relation::LessEq, 1.5);
  expect_engines_agree(p, "redundant");
  const LpSolution sol = solve(p, revised_options());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x) + sol.value(y), 2.0, 1e-9);
}

TEST(RevisedSimplexTest, InfeasibleAndUnboundedAgree) {
  LpProblem infeasible;
  const VarId x = infeasible.add_variable("x", 1.0);
  infeasible.add_constraint({{x, 1.0}}, Relation::LessEq, 1.0);
  infeasible.add_constraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
  expect_engines_agree(infeasible, "infeasible");

  LpProblem unbounded;
  const VarId u = unbounded.add_variable("u", -1.0);
  unbounded.add_constraint({{u, -1.0}}, Relation::LessEq, 1.0);
  expect_engines_agree(unbounded, "unbounded");
}

/// A small transportation LP: supplies s_i, demands d_j.
LpProblem transport_lp(const std::vector<double>& supply,
                       const std::vector<double>& demand,
                       std::vector<std::vector<VarId>>* x_out,
                       std::vector<std::size_t>* demand_rows = nullptr) {
  LpProblem p;
  const std::size_t ns = supply.size();
  const std::size_t nd = demand.size();
  std::vector<std::vector<VarId>> x(ns, std::vector<VarId>(nd, 0));
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nd; ++j) {
      x[i][j] = p.add_variable("x", 1.0 + static_cast<double>((i * 7 + j * 3) % 5));
    }
  }
  for (std::size_t i = 0; i < ns; ++i) {
    std::vector<Term> row;
    for (std::size_t j = 0; j < nd; ++j) row.push_back({x[i][j], 1.0});
    p.add_constraint(std::move(row), Relation::LessEq, supply[i]);
  }
  for (std::size_t j = 0; j < nd; ++j) {
    std::vector<Term> col;
    for (std::size_t i = 0; i < ns; ++i) col.push_back({x[i][j], 1.0});
    const std::size_t row =
        p.add_constraint(std::move(col), Relation::GreaterEq, demand[j]);
    if (demand_rows != nullptr) demand_rows->push_back(row);
  }
  if (x_out != nullptr) *x_out = std::move(x);
  return p;
}

TEST(WarmStartTest, ReusedBasisCutsIterations) {
  std::vector<std::vector<VarId>> x;
  std::vector<std::size_t> demand_rows;
  LpProblem p = transport_lp({10.0, 8.0, 6.0}, {5.0, 7.0, 6.0}, &x,
                             &demand_rows);
  const SimplexOptions opts = revised_options();
  const LpSolution cold = solve(p, opts);
  ASSERT_TRUE(cold.optimal());
  EXPECT_FALSE(cold.warm_started);
  ASSERT_FALSE(cold.basis.empty());

  // Nudge one demand and re-solve warm: the old basis stays feasible,
  // phase 1 is skipped entirely and the pivot count drops.
  p.set_rhs(demand_rows[1], 6.5);
  const LpSolution warm = solve(p, opts, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LT(warm.iterations, cold.iterations);

  // The warm solution must match a cold dense solve of the new problem.
  const LpSolution oracle = solve(p, dense_options());
  ASSERT_TRUE(oracle.optimal());
  EXPECT_NEAR(oracle.objective, warm.objective, 1e-9);
  for (std::size_t v = 0; v < oracle.values.size(); ++v) {
    EXPECT_NEAR(oracle.values[v], warm.values[v], 1e-9);
  }
}

TEST(WarmStartTest, InvalidBasisFallsBackCold) {
  std::vector<std::vector<VarId>> x;
  LpProblem p = transport_lp({10.0, 8.0}, {5.0, 7.0}, &x);
  Basis bogus;
  bogus.basic = {0, 0, 0, 0};  // duplicate columns: structurally invalid
  const LpSolution sol = solve(p, revised_options(), &bogus);
  ASSERT_TRUE(sol.optimal());
  EXPECT_FALSE(sol.warm_started);
  const LpSolution oracle = solve(p, dense_options());
  EXPECT_NEAR(sol.objective, oracle.objective, 1e-9);
}

TEST(WarmStartTest, InfeasibleBasisFallsBackCold) {
  std::vector<std::vector<VarId>> x;
  std::vector<std::size_t> demand_rows;
  LpProblem p = transport_lp({10.0, 8.0}, {5.0, 7.0}, &x, &demand_rows);
  const LpSolution cold = solve(p, revised_options());
  ASSERT_TRUE(cold.optimal());
  // A demand jump past the old vertex makes the inherited basis primal
  // infeasible; the solver must detect it and cold-start.
  p.set_rhs(demand_rows[0], 18.0);
  const LpSolution warm = solve(p, revised_options(), &cold.basis);
  const LpSolution oracle = solve(p, dense_options());
  ASSERT_EQ(warm.status, oracle.status);
  if (oracle.optimal()) {
    EXPECT_NEAR(warm.objective, oracle.objective, 1e-9);
  }
}

TEST(UpdateConstraintTest, PatchedProblemMatchesFreshBuild) {
  LpProblem patched;
  const VarId x = patched.add_variable("x", -1.0);
  const VarId y = patched.add_variable("y", -2.0);
  const std::size_t row0 =
      patched.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 10.0);
  patched.add_constraint({{x, 1.0}}, Relation::LessEq, 99.0);
  patched.update_constraint(row0, {{x, 2.0}, {y, 1.0}}, 8.0);
  patched.set_rhs(1, 3.0);

  LpProblem fresh;
  const VarId fx = fresh.add_variable("x", -1.0);
  const VarId fy = fresh.add_variable("y", -2.0);
  fresh.add_constraint({{fx, 2.0}, {fy, 1.0}}, Relation::LessEq, 8.0);
  fresh.add_constraint({{fx, 1.0}}, Relation::LessEq, 3.0);

  const LpSolution a = solve(patched, revised_options());
  const LpSolution b = solve(fresh, revised_options());
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_DOUBLE_EQ(a.value(x), b.value(fx));
  EXPECT_DOUBLE_EQ(a.value(y), b.value(fy));
}

TEST(PartialPricingTest, AgreesWithFullPricingAndIsDeterministic) {
  // Force candidate-list pricing with a tiny threshold and list; the
  // pivot path may differ from full Dantzig but the optimum must not,
  // and repeated runs must take the identical pivot count.
  std::vector<std::vector<VarId>> x;
  LpProblem p = transport_lp({10.0, 8.0, 6.0, 9.0}, {5.0, 7.0, 6.0, 4.0}, &x);
  SimplexOptions partial = revised_options();
  partial.partial_pricing_threshold = 1;
  partial.candidate_list_size = 3;
  const LpSolution a = solve(p, partial);
  const LpSolution b = solve(p, partial);
  const LpSolution full = solve(p, revised_options());
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(full.optimal());
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_NEAR(a.objective, full.objective, 1e-9);
  for (std::size_t v = 0; v < full.values.size(); ++v) {
    EXPECT_NEAR(a.values[v], full.values[v], 1e-9);
  }
}

TEST(PartialPricingTest, TinyRefactorIntervalStaysExact) {
  std::vector<std::vector<VarId>> x;
  LpProblem p = transport_lp({10.0, 8.0, 6.0}, {5.0, 7.0, 6.0}, &x);
  SimplexOptions churn = revised_options();
  churn.refactor_interval = 1;  // refactorize after every pivot
  const LpSolution a = solve(p, churn);
  const LpSolution oracle = solve(p, dense_options());
  ASSERT_TRUE(a.optimal());
  EXPECT_EQ(a.iterations, oracle.iterations);
  EXPECT_NEAR(a.objective, oracle.objective, 1e-9);
}

TEST(PeakBytesTest, RevisedIsSparseDenseIsQuadratic) {
  // A block-diagonal LP with many variables: the revised engine's
  // footprint scales with nonzeros, the tableau with rows x columns.
  LpProblem p;
  constexpr int kBlocks = 120;
  for (int b = 0; b < kBlocks; ++b) {
    const VarId u = p.add_variable("u", -1.0);
    const VarId v = p.add_variable("v", -1.0);
    p.add_constraint({{u, 1.0}, {v, 2.0}}, Relation::LessEq, 3.0);
  }
  const LpSolution revised = solve(p, revised_options());
  const LpSolution dense = solve(p, dense_options());
  ASSERT_TRUE(revised.optimal());
  ASSERT_TRUE(dense.optimal());
  EXPECT_NEAR(revised.objective, dense.objective, 1e-9);
  EXPECT_GT(revised.peak_bytes, 0u);
  EXPECT_LT(revised.peak_bytes * 4, dense.peak_bytes);
}

TEST(BasisLuTest, FtranBtranRoundTrip) {
  // Random sparse square systems: check B * ftran(b) == b and
  // B^T * btran(c) == c, with and without eta updates.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(trial % 12);
    // Build a CSC matrix whose first m columns form a diagonally
    // dominated (hence nonsingular) basis.
    CscMatrix a;
    a.rows = m;
    a.cols = m;
    a.col_start.assign(m + 1, 0);
    std::vector<std::vector<std::pair<std::int32_t, double>>> cols(m);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t r = 0; r < m; ++r) {
        if (r == c) {
          cols[c].emplace_back(static_cast<std::int32_t>(r),
                               3.0 + unif(rng));
        } else if (unif(rng) < 0.3) {
          cols[c].emplace_back(static_cast<std::int32_t>(r), val(rng) * 0.4);
        }
      }
    }
    for (std::size_t c = 0; c < m; ++c) {
      a.col_start[c + 1] = a.col_start[c] + cols[c].size();
      for (const auto& [r, v] : cols[c]) {
        a.row_index.push_back(r);
        a.value.push_back(v);
      }
    }
    std::vector<std::size_t> basis(m);
    for (std::size_t i = 0; i < m; ++i) basis[i] = i;

    BasisLu lu;
    ASSERT_TRUE(lu.factorize(a, basis));
    auto dense_col = [&](std::size_t c) {
      std::vector<double> out(m, 0.0);
      for (std::size_t q = a.col_start[c]; q < a.col_start[c + 1]; ++q) {
        out[a.row_index[q]] = a.value[q];
      }
      return out;
    };
    auto mat_vec = [&](const std::vector<double>& x, bool transpose) {
      std::vector<double> out(m, 0.0);
      for (std::size_t slot = 0; slot < m; ++slot) {
        const auto col = dense_col(basis[slot]);
        for (std::size_t r = 0; r < m; ++r) {
          if (transpose) {
            out[slot] += col[r] * x[r];
          } else {
            out[r] += col[r] * x[slot];
          }
        }
      }
      return out;
    };

    std::vector<double> b(m);
    for (auto& v : b) v = val(rng);
    std::vector<double> xb = b;
    lu.ftran(xb);
    const auto back = mat_vec(xb, false);
    for (std::size_t r = 0; r < m; ++r) EXPECT_NEAR(back[r], b[r], 1e-8);

    std::vector<double> c_vec(m);
    for (auto& v : c_vec) v = val(rng);
    std::vector<double> y = c_vec;
    lu.btran(y);
    const auto back_t = mat_vec(y, true);
    for (std::size_t r = 0; r < m; ++r) {
      EXPECT_NEAR(back_t[r], c_vec[r], 1e-8);
    }
  }
}

TEST(StandardFormTest, MergesDuplicateTermsAndNormalizesRhs) {
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  const VarId y = p.add_variable("y", 1.0);
  // Duplicate x terms sum to 3; negative rhs flips the row to >=.
  p.add_constraint({{x, 1.0}, {x, 2.0}, {y, -1.0}}, Relation::LessEq, -2.0);
  const StandardForm sf = standardize(p);
  EXPECT_EQ(sf.rows, 1u);
  EXPECT_EQ(sf.n_struct, 2u);
  EXPECT_EQ(sf.n_slack, 1u);   // flipped to GreaterEq: surplus
  EXPECT_EQ(sf.n_art, 1u);     // ... plus artificial
  EXPECT_TRUE(sf.rhs_negated[0]);
  EXPECT_DOUBLE_EQ(sf.rhs[0], 2.0);
  // Column x holds the merged, negated coefficient.
  ASSERT_EQ(sf.a.col_start[1] - sf.a.col_start[0], 1u);
  EXPECT_DOUBLE_EQ(sf.a.value[sf.a.col_start[x]], -3.0);
}

}  // namespace
}  // namespace bohr::lp

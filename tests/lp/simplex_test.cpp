#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace bohr::lp {
namespace {

TEST(SimplexTest, TrivialNonNegativityOptimum) {
  // min x, x >= 0 -> x = 0.
  LpProblem p;
  p.add_variable("x", 1.0);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_DOUBLE_EQ(sol.value(0), 0.0);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x, x >= 0, no upper bound.
  LpProblem p;
  p.add_variable("x", -1.0);
  const auto sol = solve(p);
  EXPECT_EQ(sol.status, SolveStatus::Unbounded);
}

TEST(SimplexTest, SimpleMaximizationViaNegation) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  LpProblem p;
  const VarId x = p.add_variable("x", -3.0);
  const VarId y = p.add_variable("y", -2.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 4);
  p.add_constraint({{x, 1}, {y, 3}}, Relation::LessEq, 6);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 4.0, 1e-9);
  EXPECT_NEAR(sol.value(y), 0.0, 1e-9);
  EXPECT_NEAR(sol.objective, -12.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2.
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  const VarId y = p.add_variable("y", 1.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::Equal, 5);
  p.add_constraint({{x, 1}, {y, -1}}, Relation::Equal, 1);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 3.0, 1e-9);
  EXPECT_NEAR(sol.value(y), 2.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // Classic diet-style LP: min 2x + 3y s.t. x + y >= 4, x + 2y >= 6.
  // Optimum at intersection (2, 2): obj = 10.
  LpProblem p;
  const VarId x = p.add_variable("x", 2.0);
  const VarId y = p.add_variable("y", 3.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::GreaterEq, 4);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::GreaterEq, 6);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  EXPECT_NEAR(sol.value(x), 2.0, 1e-9);
  EXPECT_NEAR(sol.value(y), 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 3 cannot hold together.
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  p.add_constraint({{x, 1}}, Relation::LessEq, 1);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 3);
  const auto sol = solve(p);
  EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2  <=>  x >= 2; min x -> 2.
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  p.add_constraint({{x, -1}}, Relation::LessEq, -2);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 2.0, 1e-9);
}

TEST(SimplexTest, DuplicateTermsAccumulate) {
  // x + x <= 4 -> x <= 2; min -x -> x = 2.
  LpProblem p;
  const VarId x = p.add_variable("x", -1.0);
  p.add_constraint({{x, 1}, {x, 1}}, Relation::LessEq, 4);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(x), 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem p;
  const VarId x = p.add_variable("x", -1.0);
  const VarId y = p.add_variable("y", -1.0);
  p.add_constraint({{x, 1}}, Relation::LessEq, 1);
  p.add_constraint({{x, 1}, {y, 0}}, Relation::LessEq, 1);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 2);
  p.add_constraint({{y, 1}}, Relation::LessEq, 1);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(SimplexTest, MinimaxEpigraphForm) {
  // The placement LP shape: min t s.t. a_i x + b_i <= t.
  // With x fixed by x = 1 (equality), t = max(3*1, 5 - 1) = 4.
  LpProblem p;
  const VarId t = p.add_variable("t", 1.0);
  const VarId x = p.add_variable("x", 0.0);
  p.add_constraint({{x, 1}}, Relation::Equal, 1);
  p.add_constraint({{x, 3}, {t, -1}}, Relation::LessEq, 0);
  p.add_constraint({{x, -1}, {t, -1}}, Relation::LessEq, -5);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.value(t), 4.0, 1e-9);
}

TEST(SimplexTest, TransportationProblem) {
  // 2 supplies (10, 20), 2 demands (15, 15), costs [[1,4],[2,1]].
  // Optimal: s0->d0 10, s1->d0 5, s1->d1 15 => 10 + 10 + 15 = 35.
  LpProblem p;
  std::vector<std::vector<VarId>> x(2, std::vector<VarId>(2));
  const double cost[2][2] = {{1, 4}, {2, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      x[i][j] = p.add_variable("x", cost[i][j]);
    }
  }
  p.add_constraint({{x[0][0], 1}, {x[0][1], 1}}, Relation::Equal, 10);
  p.add_constraint({{x[1][0], 1}, {x[1][1], 1}}, Relation::Equal, 20);
  p.add_constraint({{x[0][0], 1}, {x[1][0], 1}}, Relation::Equal, 15);
  p.add_constraint({{x[0][1], 1}, {x[1][1], 1}}, Relation::Equal, 15);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 35.0, 1e-8);
}

// Property test: random feasible-by-construction LPs — simplex objective
// must match a brute-force scan over basic feasible vertex candidates on
// 2-variable problems.
TEST(SimplexTest, TwoVarRandomProblemsMatchBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    LpProblem p;
    const VarId x = p.add_variable("x", rng.uniform(0.1, 3.0));
    const VarId y = p.add_variable("y", rng.uniform(0.1, 3.0));
    struct Row {
      double a, b, rhs;
    };
    std::vector<Row> rows;
    for (int c = 0; c < 4; ++c) {
      // a x + b y >= rhs with positive coefficients: always feasible.
      Row r{rng.uniform(0.2, 2.0), rng.uniform(0.2, 2.0),
            rng.uniform(1.0, 5.0)};
      rows.push_back(r);
      p.add_constraint({{x, r.a}, {y, r.b}}, Relation::GreaterEq, r.rhs);
    }
    const auto sol = solve(p);
    ASSERT_TRUE(sol.optimal()) << "trial " << trial;

    // Brute force: evaluate all pairwise constraint intersections and
    // axis intercepts; keep feasible ones.
    const double cx = p.objective_coeff(x);
    const double cy = p.objective_coeff(y);
    auto feasible = [&](double vx, double vy) {
      if (vx < -1e-9 || vy < -1e-9) return false;
      for (const auto& r : rows) {
        if (r.a * vx + r.b * vy < r.rhs - 1e-7) return false;
      }
      return true;
    };
    double best = 1e18;
    auto consider = [&](double vx, double vy) {
      if (feasible(vx, vy)) best = std::min(best, cx * vx + cy * vy);
    };
    for (std::size_t i = 0; i < rows.size(); ++i) {
      consider(rows[i].rhs / rows[i].a, 0.0);  // x axis intercept
      consider(0.0, rows[i].rhs / rows[i].b);  // y axis intercept
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        const double det = rows[i].a * rows[j].b - rows[j].a * rows[i].b;
        if (std::abs(det) < 1e-12) continue;
        const double vx =
            (rows[i].rhs * rows[j].b - rows[j].rhs * rows[i].b) / det;
        const double vy =
            (rows[i].a * rows[j].rhs - rows[j].a * rows[i].rhs) / det;
        consider(vx, vy);
      }
    }
    EXPECT_NEAR(sol.objective, best, 1e-6) << "trial " << trial;
  }
}

// Property: the reported solution always satisfies every constraint.
TEST(SimplexTest, SolutionsAreAlwaysFeasible) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    LpProblem p;
    std::vector<VarId> vars;
    for (int v = 0; v < 5; ++v) {
      vars.push_back(p.add_variable("v", rng.uniform(-1.0, 2.0)));
    }
    std::vector<std::vector<double>> coeffs;
    std::vector<double> rhs;
    for (int c = 0; c < 6; ++c) {
      std::vector<Term> terms;
      std::vector<double> row;
      for (const VarId v : vars) {
        const double a = rng.uniform(0.0, 1.5);
        row.push_back(a);
        terms.push_back({v, a});
      }
      const double b = rng.uniform(2.0, 8.0);
      coeffs.push_back(row);
      rhs.push_back(b);
      p.add_constraint(std::move(terms), Relation::LessEq, b);
    }
    const auto sol = solve(p);
    if (!sol.optimal()) continue;  // unbounded cases excluded from check
    for (std::size_t c = 0; c < coeffs.size(); ++c) {
      double lhs = 0.0;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        lhs += coeffs[c][v] * sol.value(vars[v]);
      }
      EXPECT_LE(lhs, rhs[c] + 1e-7);
    }
    for (const VarId v : vars) EXPECT_GE(sol.value(v), -1e-9);
  }
}

TEST(SimplexTest, ManyVariablesWideProblem) {
  // Epigraph minimax with 2000 columns — the shape/scale of the paper's
  // placement LP (many x^a_{ij} columns, few rows).
  LpProblem p;
  const VarId t = p.add_variable("t", 1.0);
  std::vector<VarId> xs;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(p.add_variable("x", 0.0));
  }
  // sum x = 100; for each of 4 groups: group load <= t.
  std::vector<Term> total;
  for (const VarId v : xs) total.push_back({v, 1.0});
  p.add_constraint(std::move(total), Relation::Equal, 100);
  for (int g = 0; g < 4; ++g) {
    std::vector<Term> terms{{t, -1.0}};
    for (std::size_t i = g; i < xs.size(); i += 4) {
      terms.push_back({xs[i], 1.0});
    }
    p.add_constraint(std::move(terms), Relation::LessEq, 0);
  }
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  // Best is to spread equally: t = 25.
  EXPECT_NEAR(sol.value(t), 25.0, 1e-6);
}

TEST(SimplexTest, StatusToString) {
  EXPECT_EQ(to_string(SolveStatus::Optimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::Infeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::Unbounded), "unbounded");
}

}  // namespace
}  // namespace bohr::lp

// Dual values: strong duality and marginal interpretation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/simplex.h"

namespace bohr::lp {
namespace {

double dual_objective(const LpProblem& p, const LpSolution& sol) {
  double z = 0.0;
  for (std::size_t r = 0; r < p.constraint_count(); ++r) {
    z += sol.dual(r) * p.rows()[r].rhs;
  }
  return z;
}

TEST(DualityTest, StrongDualityOnKnownProblem) {
  // min 2x + 3y s.t. x + y >= 4, x + 2y >= 6; optimum 10 at (2,2).
  LpProblem p;
  const VarId x = p.add_variable("x", 2.0);
  const VarId y = p.add_variable("y", 3.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::GreaterEq, 4);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::GreaterEq, 6);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  ASSERT_EQ(sol.duals.size(), 2u);
  EXPECT_NEAR(dual_objective(p, sol), sol.objective, 1e-8);
  // Duals of binding >= constraints in a min problem are non-negative
  // (raising the requirement raises cost).
  EXPECT_GE(sol.dual(0), -1e-9);
  EXPECT_GE(sol.dual(1), -1e-9);
}

TEST(DualityTest, LessEqDualsAreNonPositive) {
  // max-style: min -3x - 2y s.t. x + y <= 4, x <= 3.
  LpProblem p;
  const VarId x = p.add_variable("x", -3.0);
  const VarId y = p.add_variable("y", -2.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 4);
  p.add_constraint({{x, 1}}, Relation::LessEq, 3);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(dual_objective(p, sol), sol.objective, 1e-8);
  // Relaxing a <= bound can only reduce a min objective.
  EXPECT_LE(sol.dual(0), 1e-9);
  EXPECT_LE(sol.dual(1), 1e-9);
}

TEST(DualityTest, NonBindingConstraintHasZeroDual) {
  // min x s.t. x >= 2, x <= 100 (slack at optimum).
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 2);
  p.add_constraint({{x, 1}}, Relation::LessEq, 100);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.dual(0), 1.0, 1e-9);  // binding: dz/db = 1
  EXPECT_NEAR(sol.dual(1), 0.0, 1e-9);  // complementary slackness
}

TEST(DualityTest, EqualityConstraintDual) {
  // min x + 2y s.t. x + y = 5 -> all mass on x, z = 5, dz/db = 1.
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  const VarId y = p.add_variable("y", 2.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::Equal, 5);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
  EXPECT_NEAR(sol.dual(0), 1.0, 1e-9);
}

TEST(DualityTest, DualPredictsRhsPerturbation) {
  // Perturb b and compare the actual objective change to the dual.
  LpProblem p;
  const VarId x = p.add_variable("x", 2.0);
  const VarId y = p.add_variable("y", 3.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::GreaterEq, 4);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::GreaterEq, 6);
  const auto base = solve(p);
  ASSERT_TRUE(base.optimal());

  const double eps = 1e-3;
  LpProblem p2;
  const VarId x2 = p2.add_variable("x", 2.0);
  const VarId y2 = p2.add_variable("y", 3.0);
  p2.add_constraint({{x2, 1}, {y2, 1}}, Relation::GreaterEq, 4 + eps);
  p2.add_constraint({{x2, 1}, {y2, 2}}, Relation::GreaterEq, 6);
  const auto bumped = solve(p2);
  ASSERT_TRUE(bumped.optimal());
  EXPECT_NEAR((bumped.objective - base.objective) / eps, base.dual(0), 1e-5);
}

TEST(DualityTest, StrongDualityOnRandomFeasibleProblems) {
  Rng rng(515);
  for (int trial = 0; trial < 40; ++trial) {
    LpProblem p;
    std::vector<VarId> vars;
    for (int v = 0; v < 4; ++v) {
      vars.push_back(p.add_variable("v", rng.uniform(0.5, 3.0)));
    }
    for (int c = 0; c < 5; ++c) {
      std::vector<Term> terms;
      for (const VarId v : vars) terms.push_back({v, rng.uniform(0.2, 2.0)});
      p.add_constraint(std::move(terms), Relation::GreaterEq,
                       rng.uniform(1.0, 6.0));
    }
    const auto sol = solve(p);
    ASSERT_TRUE(sol.optimal()) << "trial " << trial;
    EXPECT_NEAR(dual_objective(p, sol), sol.objective, 1e-6)
        << "trial " << trial;
  }
}

TEST(DualityTest, NegativeRhsNormalizationKeepsDualConvention) {
  // -x <= -2 is x >= 2 in disguise; the dual must still be d z*/d b with
  // respect to the ORIGINAL rhs (-2): lowering b (towards -3) tightens
  // x >= 3, raising cost -> dual is negative.
  LpProblem p;
  const VarId x = p.add_variable("x", 1.0);
  p.add_constraint({{x, -1}}, Relation::LessEq, -2);
  const auto sol = solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(dual_objective(p, sol), sol.objective, 1e-8);
  EXPECT_LT(sol.dual(0), 0.0);
}

}  // namespace
}  // namespace bohr::lp

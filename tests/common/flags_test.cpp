#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace bohr {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const Flags f = make({"--name=value", "--n=42"});
  EXPECT_EQ(f.get("name", ""), "value");
  EXPECT_EQ(f.get_int("n", 0), 42);
}

TEST(FlagsTest, SpaceForm) {
  const Flags f = make({"--name", "value", "--rate", "2.5"});
  EXPECT_EQ(f.get("name", ""), "value");
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2.5);
}

TEST(FlagsTest, BooleanSwitch) {
  const Flags f = make({"--verbose", "--csv=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("csv", true));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get("missing", "fallback"), "fallback");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_FALSE(f.has("missing"));
}

TEST(FlagsTest, SwitchFollowedByFlag) {
  // --a is a switch because the next token is another flag.
  const Flags f = make({"--a", "--b=1"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_EQ(f.get_int("b", 0), 1);
}

TEST(FlagsTest, UnusedDetectsTypos) {
  const Flags f = make({"--used=1", "--typo=2"});
  EXPECT_EQ(f.get_int("used", 0), 1);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, MalformedInputsThrow) {
  EXPECT_THROW(make({"notaflag"}), ContractViolation);
  EXPECT_THROW(make({"--"}), ContractViolation);
  const Flags f = make({"--n=abc"});
  EXPECT_THROW(f.get_int("n", 0), ContractViolation);
  const Flags g = make({"--b=maybe"});
  EXPECT_THROW(g.get_bool("b", false), ContractViolation);
}

TEST(FlagsTest, ProgramNameCaptured) {
  const Flags f = make({});
  EXPECT_EQ(f.program(), "prog");
}

}  // namespace
}  // namespace bohr

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bohr {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(1); }
};

TEST_F(ParallelTest, ChunkingIsPureFunctionOfInput) {
  // Determinism rule 1: chunk boundaries never depend on the thread
  // count. Compute them at 1 thread and at 8 and compare.
  const std::size_t n = 1237;
  set_thread_count(1);
  const std::size_t chunks_serial = chunk_count(n);
  std::vector<ChunkRange> serial;
  for (std::size_t c = 0; c < chunks_serial; ++c) {
    serial.push_back(chunk_range(n, 1, c));
  }
  set_thread_count(8);
  ASSERT_EQ(chunk_count(n), chunks_serial);
  for (std::size_t c = 0; c < chunks_serial; ++c) {
    const ChunkRange range = chunk_range(n, 1, c);
    EXPECT_EQ(range.begin, serial[c].begin);
    EXPECT_EQ(range.end, serial[c].end);
  }
}

TEST_F(ParallelTest, ChunksPartitionTheRange) {
  for (const std::size_t n : {0UL, 1UL, 7UL, 64UL, 65UL, 1000UL}) {
    for (const std::size_t grain : {1UL, 4UL, 100UL}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < chunk_count(n, grain); ++c) {
        const ChunkRange range = chunk_range(n, grain, c);
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_LT(range.begin, range.end);
        covered += range.end - range.begin;
        expected_begin = range.end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST_F(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    set_thread_count(threads);
    const std::size_t n = 500;
    std::vector<std::atomic<int>> visits(n);
    parallel_for(n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, ReduceMatchesSerialFoldBitwise) {
  // Determinism rule 2: chunk partials combine in chunk order, so the
  // floating-point result is independent of the thread count.
  const std::size_t n = 1000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 3);
  }
  const auto sum_at = [&](std::size_t threads) {
    set_thread_count(threads);
    return parallel_reduce(
        n, std::size_t{1}, 0.0,
        [&](const ChunkRange& range) {
          double partial = 0.0;
          for (std::size_t i = range.begin; i < range.end; ++i) {
            partial += values[i];
          }
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double at1 = sum_at(1);
  EXPECT_EQ(at1, sum_at(2));
  EXPECT_EQ(at1, sum_at(8));
}

TEST_F(ParallelTest, ChunkRngIndependentOfThreadCount) {
  set_thread_count(1);
  Rng a = chunk_rng(42, 7);
  set_thread_count(8);
  Rng b = chunk_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
  // Distinct chunks get distinct streams.
  EXPECT_NE(chunk_rng(42, 7)(), chunk_rng(42, 8)());
}

TEST_F(ParallelTest, NestedCallsRunInline) {
  set_thread_count(4);
  std::vector<std::atomic<int>> visits(64);
  parallel_for(8, [&](std::size_t i) {
    EXPECT_TRUE(in_parallel_region());
    parallel_for(8, [&](std::size_t j) { ++visits[i * 8 + j]; });
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST_F(ParallelTest, BodyExceptionPropagates) {
  for (const std::size_t threads : {1UL, 4UL}) {
    set_thread_count(threads);
    EXPECT_THROW(
        parallel_for(100,
                     [&](std::size_t i) {
                       if (i == 37) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
    // The pool must stay usable after a failed loop.
    std::atomic<int> count{0};
    parallel_for(10, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST_F(ParallelTest, BackToBackSmallLoopsNeverDropOrRepeatWork) {
  // Regression for a stale-generation race: a notified worker that wakes
  // after run() already returned must not invoke the previous (destroyed)
  // job body or steal chunks from the next job. Many tiny consecutive
  // loops maximize the window where workers lag a generation behind.
  set_thread_count(4);
  constexpr std::size_t kLoops = 2000;
  constexpr std::size_t kItems = 3;  // fewer chunks than workers
  for (std::size_t loop = 0; loop < kLoops; ++loop) {
    std::vector<std::atomic<int>> visits(kItems);
    parallel_for(kItems, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "loop=" << loop << " i=" << i;
    }
  }
}

TEST_F(ParallelTest, SetThreadCountResizes) {
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2u);
  set_thread_count(8);
  EXPECT_EQ(thread_count(), 8u);
  std::atomic<int> count{0};
  parallel_for(256, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 256);
  set_thread_count(0);  // auto
  EXPECT_EQ(thread_count(), default_thread_count());
}

}  // namespace
}  // namespace bohr

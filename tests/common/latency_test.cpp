#include "common/latency.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace bohr {
namespace {

TEST(LatencyRecorderTest, EmptySummaryIsZero) {
  const LatencyRecorder rec;
  const LatencySummary s = rec.summarize(10.0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.throughput_qps, 0.0);
  EXPECT_EQ(s.p50_seconds, 0.0);
  EXPECT_EQ(s.p99_seconds, 0.0);
  EXPECT_EQ(s.max_seconds, 0.0);
  EXPECT_EQ(rec.digest(), 0u);
}

TEST(LatencyRecorderTest, PercentilesAndThroughput) {
  LatencyRecorder rec;
  // 1..100: p50 = 50.5, p95 = 95.05, p99 = 99.01 (linear interpolation
  // between closest ranks), max = 100.
  for (int i = 1; i <= 100; ++i) rec.add(static_cast<double>(i));
  const LatencySummary s = rec.summarize(50.0);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.throughput_qps, 2.0);
  EXPECT_NEAR(s.p50_seconds, 50.5, 1e-12);
  EXPECT_NEAR(s.p95_seconds, 95.05, 1e-12);
  EXPECT_NEAR(s.p99_seconds, 99.01, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_seconds, 100.0);
  EXPECT_NEAR(s.mean_seconds, 50.5, 1e-12);
}

TEST(LatencyRecorderTest, InsertionOrderDefinesDigest) {
  LatencyRecorder a, b, c;
  a.add(1.0);
  a.add(2.0);
  b.add(1.0);
  b.add(2.0);
  c.add(2.0);
  c.add(1.0);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(LatencyRecorderTest, MergePoolsSamplesByCount) {
  // A 3-sample recorder and a 1-sample recorder pool 3:1 — the mean is
  // the per-sample mean, not the mean of the two means.
  LatencyRecorder big, small;
  big.add(10.0);
  big.add(10.0);
  big.add(10.0);
  small.add(50.0);
  LatencyRecorder pooled = big;
  pooled.merge(small);
  EXPECT_EQ(pooled.count(), 4u);
  EXPECT_NEAR(pooled.mean(), 20.0, 1e-12);  // (30 + 50) / 4, not 30
  EXPECT_DOUBLE_EQ(pooled.stats().max(), 50.0);
}

TEST(LatencyRecorderTest, SerializeRoundTripsDigest) {
  LatencyRecorder rec;
  rec.add(0.125);
  rec.add(3.5);
  rec.add(1e-9);
  const LatencyRecorder back = LatencyRecorder::deserialize(rec.serialize());
  EXPECT_EQ(back.count(), rec.count());
  EXPECT_EQ(back.digest(), rec.digest());
  EXPECT_EQ(back.samples(), rec.samples());
  EXPECT_NEAR(back.mean(), rec.mean(), 1e-15);
}

TEST(LatencyRecorderTest, DeserializeRejectsTruncatedImage) {
  LatencyRecorder rec;
  rec.add(1.0);
  std::string image = rec.serialize();
  image.pop_back();
  EXPECT_THROW(LatencyRecorder::deserialize(image), ContractViolation);
}

}  // namespace
}  // namespace bohr

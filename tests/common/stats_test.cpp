#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace bohr {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 50), 15.0);
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 25), 12.5);
}

TEST(PercentileTest, ExtremesAreMinMax) {
  const std::vector<double> v{5, 9, 1, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(PercentileTest, OutOfRangeThrows) {
  EXPECT_THROW(percentile({1.0}, -1), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 101), ContractViolation);
}

TEST(MeanOfTest, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace bohr

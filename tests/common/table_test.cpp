#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/hash.h"

namespace bohr {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, MismatchedRowThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TableTest, NumFormatsFixed) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.012), "12.00 ms");
  EXPECT_EQ(format_seconds(3e-6), "3.00 us");
}

TEST(HashTest, Fnv1aKnownValue) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(HashTest, Mix64IsInjectiveOnSamples) {
  EXPECT_NE(mix64(1), mix64(2));
  // mix64 is a bijection with fixed point 0 (murmur3 finalizer property).
  EXPECT_EQ(mix64(0), 0u);
  EXPECT_NE(mix64(1), 1u);
}

TEST(HashTest, IndexedHashVariesWithIndex) {
  EXPECT_NE(indexed_hash(42, 0), indexed_hash(42, 1));
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

}  // namespace
}  // namespace bohr

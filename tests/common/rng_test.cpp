#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bohr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child stream differs from parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, PickFromEmptyThrows) {
  Rng rng(1);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), ContractViolation);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace bohr

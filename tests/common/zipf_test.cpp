#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace bohr {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.universe(); ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfSumsToOneAcrossSizesAndSkews) {
  // The old implementation derived pmf from cdf differences with the
  // last cdf entry pinned to 1.0, silently inflating pmf(n-1) by the
  // accumulated floating-point slack. The pmf now comes from the raw
  // weights, so the mass stays within 1e-12 even for large universes.
  // (Kahan summation here — at n=1e5 a naive test-side sum would itself
  // accumulate ~2e-12 of rounding and mask what is being measured.)
  for (const std::size_t n : {2u, 17u, 1000u, 100000u}) {
    for (const double s : {0.0, 0.5, 1.0, 1.7}) {
      ZipfSampler zipf(n, s);
      double total = 0.0;
      double carry = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double y = zipf.pmf(r) - carry;
        const double t = total + y;
        carry = (t - total) - y;
        total = t;
      }
      EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n << " s=" << s;
    }
  }
}

TEST(ZipfTest, PmfMatchesPowerLawRatios) {
  // pmf(i)/pmf(j) must equal ((j+1)/(i+1))^s exactly up to rounding —
  // in particular for the LAST rank, which the cdf-difference pmf got
  // wrong by absorbing the rounding guard's slack.
  const double s = 1.3;
  ZipfSampler zipf(257, s);
  for (const std::size_t r : {1u, 10u, 128u, 255u, 256u}) {
    const double expected = std::pow(static_cast<double>(r + 1), s);
    EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(r), expected, expected * 1e-12)
        << "rank " << r;
  }
}

TEST(ZipfTest, LastRankNotInflatedByRoundingGuard) {
  ZipfSampler zipf(5000, 1.0);
  // Monotone at the very tail: the guard on cdf.back() must not leak
  // into pmf(n-1).
  EXPECT_GE(zipf.pmf(4998), zipf.pmf(4999));
  const double ratio = zipf.pmf(4998) / zipf.pmf(4999);
  EXPECT_NEAR(ratio, 5000.0 / 4999.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 0.9);
  for (std::size_t r = 1; r < zipf.universe(); ++r) {
    EXPECT_GE(zipf.pmf(r - 1), zipf.pmf(r));
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, SamplesWithinUniverse) {
  ZipfSampler zipf(42, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 42u);
}

TEST(ZipfTest, EmpiricalFrequencyMatchesPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(77);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    const double freq = static_cast<double>(counts[r]) / n;
    EXPECT_NEAR(freq, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, HighSkewConcentratesMass) {
  ZipfSampler zipf(1000, 2.0);
  // With s=2 the head rank should hold the majority of the mass.
  EXPECT_GT(zipf.pmf(0), 0.5);
}

TEST(ZipfTest, InvalidArgsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfSampler(10, -0.5), ContractViolation);
}

}  // namespace
}  // namespace bohr

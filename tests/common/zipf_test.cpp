#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace bohr {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.universe(); ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 0.9);
  for (std::size_t r = 1; r < zipf.universe(); ++r) {
    EXPECT_GE(zipf.pmf(r - 1), zipf.pmf(r));
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, SamplesWithinUniverse) {
  ZipfSampler zipf(42, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 42u);
}

TEST(ZipfTest, EmpiricalFrequencyMatchesPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(77);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    const double freq = static_cast<double>(counts[r]) / n;
    EXPECT_NEAR(freq, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, HighSkewConcentratesMass) {
  ZipfSampler zipf(1000, 2.0);
  // With s=2 the head rank should hold the majority of the mass.
  EXPECT_GT(zipf.pmf(0), 0.5);
}

TEST(ZipfTest, InvalidArgsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfSampler(10, -0.5), ContractViolation);
}

}  // namespace
}  // namespace bohr

// Bring-your-own-data workflow: export a dataset to CSV (stand-in for a
// real trace), re-import it, inspect it with the SQL front-end, persist
// its cube, and run the full Bohr-vs-baseline comparison on it.
//
// Run: ./build/examples/trace_import
#include <cstdio>
#include <sstream>

#include "core/experiment.h"
#include "olap/cube_io.h"
#include "olap/sql.h"
#include "workload/query_mix.h"
#include "workload/trace_io.h"

int main() {
  using namespace bohr;

  // 1. A "trace" on disk — here synthesized, but any CSV with the same
  //    header works.
  workload::GeneratorConfig gen;
  gen.sites = 10;
  gen.rows_per_site = 480;
  gen.gb_per_site = 40.0 / 6;
  gen.seed = 604;
  const auto reference =
      workload::generate_dataset(workload::WorkloadKind::BigData, 0, gen);
  std::stringstream csv;
  workload::write_csv(csv, reference);
  std::printf("trace: %zu rows, header '%.40s...'\n",
              reference.total_rows(), csv.str().c_str());

  // 2. Import it back (in a real deployment: load_csv(path, ...)).
  const auto imported = workload::read_csv(csv, reference, gen.sites);

  // 3. Build one site's cube and poke at it with SQL.
  Rng rng(1);
  auto mix = workload::sample_query_mix(imported, rng);
  core::DatasetState state(imported, mix, /*with_cubes=*/true);
  const auto top_urls = olap::run_sql(
      state.cubes_at(0).base_cube(),
      "SELECT count(*) FROM trace GROUP BY url ORDER BY value DESC LIMIT 3");
  std::printf("site 0 top URLs by record count:");
  for (const auto& row : top_urls) {
    std::printf("  url#%llu x%llu",
                static_cast<unsigned long long>(row.group[0]),
                static_cast<unsigned long long>(row.count));
  }
  std::printf("\n");

  // 4. Persist the cube (queries need only this, §8.5 — raw data can go
  //    to cold storage).
  olap::save_cube("/tmp/bohr_site0.cube", state.cubes_at(0).base_cube());
  const auto restored = olap::load_cube("/tmp/bohr_site0.cube");
  std::printf("cube persisted and restored: %zu cells, %llu records\n",
              restored.cell_count(),
              static_cast<unsigned long long>(restored.total_records()));
  std::remove("/tmp/bohr_site0.cube");

  // 5. Full comparison on the imported data. run_workload regenerates
  //    deterministically from the same seed, so configure it identically.
  core::ExperimentConfig cfg;
  cfg.workload = workload::WorkloadKind::BigData;
  cfg.n_datasets = 6;
  cfg.generator = gen;
  cfg.base_bandwidth = 125e6;
  cfg.lag_seconds = 60.0;
  cfg.seed = 604;
  const auto run = core::run_workload(
      cfg, {core::Strategy::IridiumC, core::Strategy::Bohr});
  std::printf("Iridium-C %.2fs vs Bohr %.2fs (reduction %.1f%% vs %.1f%%)\n",
              run.outcome(core::Strategy::IridiumC).avg_qct_seconds,
              run.outcome(core::Strategy::Bohr).avg_qct_seconds,
              run.mean_data_reduction_percent(core::Strategy::IridiumC),
              run.mean_data_reduction_percent(core::Strategy::Bohr));
  return 0;
}

// A tour of the OLAP substrate as a standalone library (§2.2, §4): build
// a sales cube, run the classic operations (slice / dice / roll-up /
// pivot), derive dimension cubes for query types, and run a probe-based
// similarity check between two "sites" — all without the distributed
// engine.
//
// Run: ./build/examples/olap_cube_tour
#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "olap/cube_store.h"
#include "similarity/probe.h"

int main() {
  using namespace bohr;
  using olap::AttributeType;
  using olap::Dimension;
  using olap::Row;

  // Schema of Figure 2: time x region x product with a sales measure.
  const olap::Schema schema({{"year", AttributeType::Integer, false},
                             {"region", AttributeType::Text, false},
                             {"product", AttributeType::Text, false},
                             {"sales", AttributeType::Real, true}});
  olap::CubeSpec spec;
  spec.schema = schema;
  spec.dim_attrs = {0, 1, 2};
  spec.dimensions = {Dimension("year", {{"year", 1}, {"triennium", 3}}),
                     Dimension("region"), Dimension("product")};
  spec.measure_attr = 3;
  const olap::CubeBuilder builder(spec);

  const std::vector<Row> rows{
      {std::int64_t{2012}, "EMEA", "A", 10.0},
      {std::int64_t{2012}, "EMEA", "B", 4.0},
      {std::int64_t{2013}, "EMEA", "A", 7.0},
      {std::int64_t{2013}, "APAC", "A", 6.0},
      {std::int64_t{2014}, "APAC", "A", 3.0},
      {std::int64_t{2014}, "APAC", "B", 8.0},
      {std::int64_t{2014}, "EMEA", "A", 2.0},
  };
  const olap::OlapCube cube = builder.build(rows);
  std::printf("Base cube: %zu records in %zu cells\n",
              static_cast<std::size_t>(cube.total_records()),
              cube.cell_count());

  // slice: all 2014 sales (drops the time dimension).
  const auto y2014 = olap::value_to_member(olap::Value(std::int64_t{2014}));
  const olap::OlapCube sales_2014 = cube.slice(0, y2014);
  std::printf("slice(year=2014): %zu cells over (region, product)\n",
              sales_2014.cell_count());

  // dice: product A only, every dimension retained.
  const auto product_a = olap::value_to_member(olap::Value(std::string{"A"}));
  const olap::OlapCube only_a = cube.dice(2, std::unordered_set<olap::MemberId>{product_a});
  std::printf("dice(product=A):  %zu cells, %llu records\n",
              only_a.cell_count(),
              static_cast<unsigned long long>(only_a.total_records()));

  // roll-up: coarsen years to the triennium level.
  const olap::OlapCube by_triennium = cube.roll_up(0, 1);
  std::printf("roll_up(time->triennium): %zu cells (was %zu)\n",
              by_triennium.cell_count(), cube.cell_count());

  // pivot: reorder to (product, region, year).
  const olap::OlapCube pivoted = cube.pivot({2, 1, 0});
  std::printf("pivot: first dimension is now '%s'\n",
              pivoted.dimension(0).name().c_str());

  // dimension cube: aggregate regions away, keep (product, year).
  const olap::OlapCube product_year = cube.project({2, 0});
  std::printf("project(product, year): %zu cells; combiner effectiveness "
              "%.2f\n\n",
              product_year.cell_count(), cube.combine_effectiveness());

  // --- Probe-based similarity between two sites -------------------------
  olap::DatasetCubes site_a{olap::CubeBuilder(spec)};
  olap::DatasetCubes site_b{olap::CubeBuilder(spec)};
  const olap::QueryTypeId by_product_a = site_a.register_query_type({2});
  site_b.register_query_type({2});
  site_a.add_rows(rows);
  // Site B shares product A but not product B, plus a private product C.
  const std::vector<Row> rows_b{
      {std::int64_t{2014}, "AMER", "A", 9.0},
      {std::int64_t{2014}, "AMER", "A", 1.0},
      {std::int64_t{2014}, "AMER", "C", 5.0},
  };
  site_b.add_rows(rows_b);

  const std::vector<similarity::QueryTypeWeight> weights{{by_product_a, 1.0}};
  const similarity::Probe probe =
      similarity::build_probe(0, site_a, weights, 2);
  const similarity::ProbeEvaluation eval =
      similarity::evaluate_probe(probe, site_b);
  std::printf("Probe from site A (top-%zu product clusters) scored at "
              "site B:\n  similarity S_ab = %.2f  (matched %zu of %zu "
              "probe records)\n",
              probe.records.size(), eval.similarity,
              static_cast<std::size_t>(
                  std::count(eval.matched.begin(), eval.matched.end(), 1)),
              eval.matched.size());
  std::printf("=> move product-A records from A to B: they merge into "
              "B's existing cells.\n");
  return 0;
}

// Quickstart: the minimal end-to-end Bohr flow.
//
//   1. Describe the WAN (the paper's ten EC2 regions).
//   2. Generate a geo-distributed dataset and its recurring query mix.
//   3. Hand everything to the Bohr controller: it builds OLAP cubes,
//      exchanges probes, solves the joint placement LP, moves data in the
//      lag before the next query, and executes the queries.
//   4. Compare against the Iridium-C baseline.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace bohr;

  // Experiment setup: 12 datasets of the AMPLab-style big-data workload
  // totalling 40GB per site, 60s between recurring queries, base-tier
  // WAN uplink of 125 MB/s (the paper's three bandwidth tiers).
  core::ExperimentConfig config;
  config.workload = workload::WorkloadKind::BigData;
  config.n_datasets = 12;
  config.generator.sites = 10;
  config.generator.rows_per_site = 480;
  config.generator.gb_per_site = 40.0 / 12;
  config.base_bandwidth = 125e6;
  config.lag_seconds = 60.0;
  config.probe_k = 30;
  config.seed = 42;

  std::printf("Running Iridium-C and Bohr on the %s workload...\n\n",
              to_string(config.workload).c_str());
  const core::WorkloadRun run = core::run_workload(
      config, {core::Strategy::IridiumC, core::Strategy::Bohr});

  for (const core::Strategy s :
       {core::Strategy::IridiumC, core::Strategy::Bohr}) {
    const core::StrategyOutcome& o = run.outcome(s);
    std::printf("%-10s  avg QCT %6.2f s   data reduction %6.2f %%   "
                "moved %7.2f GB in %.1f s\n",
                core::to_string(s).c_str(), o.avg_qct_seconds,
                run.mean_data_reduction_percent(s),
                o.prep.bytes_moved / 1e9, o.prep.movement_seconds);
  }

  const double iridium_c =
      run.outcome(core::Strategy::IridiumC).avg_qct_seconds;
  const double bohr = run.outcome(core::Strategy::Bohr).avg_qct_seconds;
  std::printf("\nBohr is %.1f%% faster than Iridium-C on this run.\n",
              100.0 * (1.0 - bohr / iridium_c));
  return 0;
}

// Geo-distributed PageRank: the paper's motivating scenario (§1, Fig 1)
// at full scale. Web-access logs accumulate in ten regions; a recurring
// PageRank-style UDF aggregates scores by URL. The example walks through
// every Bohr stage explicitly — cube pre-processing, probe exchange,
// joint placement, movement, execution — and contrasts all six schemes.
//
// Run: ./build/examples/geo_pagerank
#include <cstdio>

#include "core/controller.h"
#include "core/experiment.h"
#include "common/table.h"
#include "workload/query_mix.h"

namespace {

using namespace bohr;

core::ExperimentConfig make_config() {
  core::ExperimentConfig config;
  config.workload = workload::WorkloadKind::BigData;
  config.n_datasets = 12;
  config.generator.sites = 10;
  config.generator.rows_per_site = 480;
  config.generator.gb_per_site = 40.0 / 12;
  config.base_bandwidth = 125e6;
  config.lag_seconds = 60.0;
  config.seed = 1913;  // Bohr's Nobel year
  return config;
}

}  // namespace

int main() {
  using core::Strategy;
  const core::ExperimentConfig config = make_config();

  std::printf("Geo-distributed PageRank over %zu web-log datasets, "
              "%zu sites, %.0fGB per site total.\n\n",
              config.n_datasets, config.generator.sites,
              config.generator.gb_per_site *
                  static_cast<double>(config.n_datasets));

  // --- Step-by-step walkthrough with the full Bohr controller ----------
  {
    const net::WanTopology topo = config.make_topology();
    std::vector<core::DatasetState> states;
    Rng mix_rng(7);
    for (std::size_t a = 0; a < config.n_datasets; ++a) {
      auto bundle =
          workload::generate_dataset(config.workload, a, config.generator);
      auto mix = workload::sample_query_mix(bundle, mix_rng);
      states.emplace_back(std::move(bundle), std::move(mix),
                          /*with_cubes=*/true);
    }
    core::ControllerOptions options;
    options.strategy = Strategy::Bohr;
    options.lag_seconds = config.lag_seconds;
    options.seed = config.seed;
    core::Controller controller(topo, std::move(states), options);

    const core::PrepareReport& prep = controller.prepare();
    std::printf("Pre-processing (hidden in the %gs lag between queries):\n",
                config.lag_seconds);
    std::printf("  probe exchange ....... %.1f KiB on the WAN, %.3f s\n",
                prep.probe_bytes / 1024.0, prep.similarity_seconds);
    std::printf("  joint placement LP ... %.3f s (%zu simplex pivots)\n",
                prep.decision.lp_seconds, prep.decision.lp_iterations);
    std::printf("  data movement ........ %.2f GB in %.1f s (%s)\n\n",
                prep.bytes_moved / 1e9, prep.movement_seconds,
                prep.movement_within_lag ? "fits the lag" : "LAG EXCEEDED");

    std::printf("Reduce-task placement r_i per site:\n  ");
    for (std::size_t i = 0; i < topo.site_count(); ++i) {
      std::printf("%s %.2f   ", topo.site(i).name.c_str(),
                  prep.decision.reduce_fractions[i]);
    }
    std::printf("\n\n");
  }

  // --- All six schemes side by side -------------------------------------
  const std::vector<Strategy> schemes{
      Strategy::Iridium,   Strategy::IridiumC, Strategy::BohrSim,
      Strategy::BohrJoint, Strategy::BohrRdd,  Strategy::Bohr};
  const core::WorkloadRun run = core::run_workload(config, schemes);

  TablePrinter table({"scheme", "avg QCT (s)", "PageRank UDF QCT (s)",
                      "data reduction (%)", "WAN shuffle (GB)"});
  for (const Strategy s : schemes) {
    const auto& o = run.outcome(s);
    const auto udf = o.qct_by_kind.find(engine::QueryKind::Udf);
    table.add_row({core::to_string(s),
                   TablePrinter::num(o.avg_qct_seconds, 2),
                   TablePrinter::num(
                       udf == o.qct_by_kind.end() ? 0.0 : udf->second, 2),
                   TablePrinter::num(run.mean_data_reduction_percent(s), 2),
                   TablePrinter::num(o.wan_shuffle_bytes / 1e9, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}

// Retail business intelligence on highly dynamic data (§8.6): a TPC-DS
// style star schema where each store's daily sales extract arrives as a
// batch between recurring queries. Bohr buffers new rows, brings the
// dimension cube the next query needs up to date first (§4.1), and
// re-runs similarity checking plus the placement LP every few queries.
//
// Run: ./build/examples/retail_analytics
#include <cstdio>

#include "core/experiment.h"
#include "workload/dynamic.h"

int main() {
  using namespace bohr;

  core::ExperimentConfig config;
  config.workload = workload::WorkloadKind::TpcDs;
  config.n_datasets = 12;
  config.generator.sites = 10;
  config.generator.rows_per_site = 480;
  config.generator.gb_per_site = 40.0 / 12;
  config.generator.placement = workload::InitialPlacement::LocalityAware;
  config.base_bandwidth = 125e6;
  config.lag_seconds = 60.0;
  config.seed = 2018;

  std::printf(
      "Retail analytics: %zu store_sales datasets, locality-aware initial\n"
      "placement (each site ingests its own stores' extracts).\n\n",
      config.n_datasets);

  // Static comparison first: how much does Bohr help this workload?
  const core::WorkloadRun run = core::run_workload(
      config, {core::Strategy::IridiumC, core::Strategy::Bohr});
  std::printf("Static data:   Iridium-C %.2f s   Bohr %.2f s   "
              "(reduction %.1f%% vs %.1f%%)\n",
              run.outcome(core::Strategy::IridiumC).avg_qct_seconds,
              run.outcome(core::Strategy::Bohr).avg_qct_seconds,
              run.mean_data_reduction_percent(core::Strategy::IridiumC),
              run.mean_data_reduction_percent(core::Strategy::Bohr));

  // Dynamic setting: 25% of data initially, the rest in nightly batches;
  // re-plan (probes + LP + movement) every 5 queries.
  core::ExperimentConfig dyn_config = config;
  dyn_config.n_datasets = 4;  // one query per batch; keep the run snappy
  dyn_config.generator.gb_per_site = 40.0 / 4;
  const core::DynamicRunResult dynamic = core::run_dynamic_experiment(
      dyn_config, /*n_batches=*/15, /*initial_fraction=*/0.25,
      /*replan_every=*/5);
  std::printf("Dynamic data:  normal %.2f s   dynamic %.2f s   "
              "(%zu queries, %zu re-plans)\n",
              dynamic.normal_avg_qct, dynamic.dynamic_avg_qct,
              dynamic.queries_run, dynamic.replans);
  std::printf("\nDynamic/normal QCT ratio: %.2fx — pre-processing of new "
              "batches hides\nin the query lag, as in the paper's Table 7.\n",
              dynamic.dynamic_avg_qct / dynamic.normal_avg_qct);
  return 0;
}

#!/usr/bin/env python3
"""Perf smoke gate for single-thread hot paths.

Compares a fresh BENCH_<name>.json (written by a bench binary that must
run with --threads=1 so the gate measures per-core speed, not
parallelism) against a checked-in baseline, and fails if the summed time
regresses more than the threshold.

The checked-in baselines (bench/baselines/) hold PRE-optimization
numbers, so each gate enforces "the rewrite's win never quietly erodes":
even on a CI machine ~2x slower than the box that recorded the baseline,
a healthy build clears it, while losing the optimized path trips it.

Gated series (selected with --key):
  checking_seconds_by_k  (default) — Table 3 similarity checking, vs the
                         pre-columnar/SIMD baseline
  lp_seconds_by_case     — Table 5 joint-LP solve time, vs the
                         dense-tableau baseline
  p99_by_load            — serving-loop p99 QCT by offered load. These
                         are modeled virtual-time seconds (host- and
                         build-independent), so this gate is a model
                         drift alarm: any change to the serving or
                         engine model that moves the tail >20% trips it

Usage:
  perf_smoke.py CURRENT_JSON BASELINE_JSON [--threshold 0.20] [--key KEY]

Exit status: 0 pass, 1 regression, 2 usage/malformed input.
"""

import argparse
import json
import sys


def load_rows(path, key):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf_smoke: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get(key)
    if not isinstance(rows, dict) or not rows:
        print(f"perf_smoke: {path} has no {key} rows", file=sys.stderr)
        sys.exit(2)
    return doc, {str(k): float(v) for k, v in rows.items()}


def sort_keys(keys):
    """Numeric order when every key parses as an int, else lexicographic."""
    try:
        return sorted(keys, key=int)
    except ValueError:
        return sorted(keys)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--key", default="checking_seconds_by_k",
                        help="JSON field holding the case -> seconds map")
    args = parser.parse_args()

    current_doc, current = load_rows(args.current, args.key)
    _, baseline = load_rows(args.baseline, args.key)

    threads = current_doc.get("threads")
    if threads != 1:
        print(f"perf_smoke: current run used threads={threads}; the gate "
              "requires a --threads=1 run", file=sys.stderr)
        sys.exit(2)

    shared = sort_keys(set(current) & set(baseline))
    if not shared:
        print("perf_smoke: no common cases between current and baseline",
              file=sys.stderr)
        sys.exit(2)

    width = max(len(k) for k in shared)
    print(f"{'case':>{width}} {'baseline (s)':>14} {'current (s)':>14} "
          f"{'ratio':>8}")
    for k in shared:
        ratio = current[k] / baseline[k] if baseline[k] > 0 else float("inf")
        print(f"{k:>{width}} {baseline[k]:>14.6f} {current[k]:>14.6f} "
              f"{ratio:>8.2f}")

    base_total = sum(baseline[k] for k in shared)
    cur_total = sum(current[k] for k in shared)
    limit = base_total * (1.0 + args.threshold)
    print(f"total  baseline={base_total:.6f}s  current={cur_total:.6f}s  "
          f"limit={limit:.6f}s (threshold {args.threshold:.0%})")

    if cur_total > limit:
        print(f"perf_smoke: FAIL — single-thread {args.key} regressed "
              f"{cur_total / base_total - 1.0:+.1%} vs baseline",
              file=sys.stderr)
        sys.exit(1)
    print("perf_smoke: PASS")
    sys.exit(0)


if __name__ == "__main__":
    main()

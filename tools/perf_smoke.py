#!/usr/bin/env python3
"""Perf smoke gate for the similarity checking hot path.

Compares a fresh BENCH_bench_tab3_checking_time.json (written by
bench/bench_tab3_checking_time, which must run with --threads=1 so the
gate measures per-core speed, not parallelism) against a checked-in
baseline, and fails if the total checking time regresses more than the
threshold.

The checked-in baseline (bench/baselines/) holds the PRE-columnar/SIMD
numbers, so the gate enforces "the rewrite's win never quietly erodes":
even on a CI machine ~2x slower than the box that recorded the baseline,
a healthy build clears it, while losing the batched kernels or the
columnar probe path trips it.

Usage:
  perf_smoke.py CURRENT_JSON BASELINE_JSON [--threshold 0.20]

Exit status: 0 pass, 1 regression, 2 usage/malformed input.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf_smoke: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("checking_seconds_by_k")
    if not isinstance(rows, dict) or not rows:
        print(f"perf_smoke: {path} has no checking_seconds_by_k rows",
              file=sys.stderr)
        sys.exit(2)
    return doc, {str(k): float(v) for k, v in rows.items()}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    args = parser.parse_args()

    current_doc, current = load_rows(args.current)
    _, baseline = load_rows(args.baseline)

    threads = current_doc.get("threads")
    if threads != 1:
        print(f"perf_smoke: current run used threads={threads}; the gate "
              "requires a --threads=1 run", file=sys.stderr)
        sys.exit(2)

    shared = sorted(set(current) & set(baseline), key=int)
    if not shared:
        print("perf_smoke: no common probe sizes between current and "
              "baseline", file=sys.stderr)
        sys.exit(2)

    print(f"{'k':>6} {'baseline (s)':>14} {'current (s)':>14} {'ratio':>8}")
    for k in shared:
        ratio = current[k] / baseline[k] if baseline[k] > 0 else float("inf")
        print(f"{k:>6} {baseline[k]:>14.6f} {current[k]:>14.6f} "
              f"{ratio:>8.2f}")

    base_total = sum(baseline[k] for k in shared)
    cur_total = sum(current[k] for k in shared)
    limit = base_total * (1.0 + args.threshold)
    print(f"total  baseline={base_total:.6f}s  current={cur_total:.6f}s  "
          f"limit={limit:.6f}s (threshold {args.threshold:.0%})")

    if cur_total > limit:
        print("perf_smoke: FAIL — single-thread checking time regressed "
              f"{cur_total / base_total - 1.0:+.1%} vs baseline",
              file=sys.stderr)
        sys.exit(1)
    print("perf_smoke: PASS")
    sys.exit(0)


if __name__ == "__main__":
    main()

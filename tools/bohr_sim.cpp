// bohr_sim — command-line driver for the Bohr experiment harness.
//
// Examples:
//   bohr_sim --workload=bigdata --datasets=12 --schemes=iridium-c,bohr
//   bohr_sim --workload=tpcds --placement=locality --runs=5 --csv
//   bohr_sim --workload=facebook --probe-k=100 --lag=30 --seed=7
//   bohr_sim --faults='outage:site=6,start=0,end=15;probe-loss:p=0.3'
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/crc32.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/checkpoint.h"
#include "core/experiment.h"
#include "net/faults.h"
#include "serve/server.h"

namespace {

using namespace bohr;

constexpr const char* kUsage = R"(usage: bohr_sim [flags]

Flags (defaults in brackets):
  --workload    bigdata | tpcds | facebook            [bigdata]
  --schemes     comma list of centralized,iridium,iridium-c,bohr-sim,
                bohr-joint,bohr-rdd,bohr              [iridium,iridium-c,bohr]
  --datasets    dataset count (> 0)                   [12]
  --rows        rows per site per dataset (> 0)       [480]
  --gb-per-site total GB per site across datasets     [40]
  --bandwidth   base-tier uplink, MB/s (> 0)          [125]
  --lag         seconds between recurring queries     [60]
  --probe-k     probe records per dataset (> 0)       [30]
  --placement   random | locality                     [random]
  --executors   executors per machine (> 0)           [4]
  --seed        experiment seed                       [20181204]
  --threads     worker threads; results are identical
                for every value (1 = serial path)     [hardware/BOHR_THREADS]
  --runs        repeated runs (mean +/- std output)   [1]
  --csv         emit CSV instead of an aligned table
  --enforce-lag truncate movement at the lag deadline
  --faults      ';'-joined fault clauses, e.g.
                outage:site=S,start=A,end=B[,phases=probe+move+query]
                degrade:site=S,start=A,end=B,factor=F[,link=up|down|both]
                slow-site:site=S,start=A,end=B[,factor=F][,phases=P]
                kill:time=T[,src=S][,dst=S]
                probe-loss:p=F[,seed=N]
                retry:max=N,base=S[,cap=S][,mode=resume|restart]
                lp-failure
                crash:phase=NAME (similarity|placement|movement_plan|movement)
                torn-write:file=N[,fraction=F]
                bit-flip:file=N[,bit=B]

Checkpointing (prepare-only mode; requires one scheme and --runs=1):
  --checkpoint-dir       snapshot prepare() after every phase into DIR
  --crash-after-phase    shorthand for --faults='crash:phase=NAME';
                         exits with status 3 after that phase's snapshot
  --recover              restore the newest intact snapshot from
                         --checkpoint-dir and resume the remaining phases

Churn mode (site churn under the elastic migration controller):
  --churn=N              run the Bohr query mix for N rounds on a run
                         clock while --faults kills/slows sites; fault
                         windows use run-clock times (round r executes
                         at lag + r * lag)
  --migration=on|off     relocate reduce buckets away from sick sites
                         between rounds (on), or freeze the initial
                         bucket placement (off)             [on]
  --checkpoint-dir       with --churn: also snapshot after every round;
                         combine with --recover to resume a crashed run
  --crash-after-round=N  stop (exit 3) after N rounds' snapshots commit

Degraded mode (similarity-backed graceful degradation):
  --degrade              never fail a query: each one runs under a
                         deadline budget (bounded retries, partial
                         reduce close-out), and a query whose home
                         sites are dead or dark is answered from the
                         most similar surviving cube with an explicit
                         error estimate. Prints one line per query
                         (mode, value, error estimate) plus a summary
                         with the DegradedReport digest. Implies
                         --churn=1 when --churn is absent
  --degrade-budget=SEC   per-query QCT budget in modeled seconds  [60]

Serving mode (online multi-tenant stream; see DESIGN.md sec. 16):
  --serve                run one prepared scheme as a long-lived server
                         admitting a Poisson/Zipf/heavy-tail query
                         stream; reports p50/p95/p99/max QCT, the
                         offered-window throughput, per-tenant tails,
                         and the canonical latency digest (two runs
                         with the same seed produce byte-identical
                         digests at ANY --threads). Requires exactly
                         one scheme and --runs=1; conflicts with
                         --churn, --degrade, --recover,
                         --checkpoint-dir and --crash-after-phase
  --tenants=N            concurrent tenants (> 0)             [4]
  --arrival-rate=QPS     per-tenant mean arrival rate (> 0)   [2]
  --duration=SEC         admission window length (> 0)        [60]
  --batch-size=N         admission batch closes at N queries  [8]
  --batch-delay=SEC      ... or after SEC since it opened     [0.25]
  --slots=N              concurrent batch-execution slots     [4]
  --migration-period=SEC elastic-migration cadence on the run
                         clock; 0 disables the controller     [30]

Exit codes: 0 = success; 1 = runtime error; 2 = usage error (this
text); 3 = injected crash (--crash-after-phase, --crash-after-round).
)";

/// Flag/spec validation error: print usage, exit 2 (vs runtime errors,
/// which exit 1 without the usage wall).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

workload::WorkloadKind parse_workload(const std::string& name) {
  if (name == "bigdata") return workload::WorkloadKind::BigData;
  if (name == "tpcds") return workload::WorkloadKind::TpcDs;
  if (name == "facebook") return workload::WorkloadKind::Facebook;
  throw UsageError("unknown --workload=" + name);
}

core::Strategy parse_strategy(const std::string& name) {
  if (name == "centralized") return core::Strategy::Centralized;
  if (name == "geode") return core::Strategy::Geode;
  if (name == "iridium") return core::Strategy::Iridium;
  if (name == "iridium-c") return core::Strategy::IridiumC;
  if (name == "bohr-sim") return core::Strategy::BohrSim;
  if (name == "bohr-joint") return core::Strategy::BohrJoint;
  if (name == "bohr-rdd") return core::Strategy::BohrRdd;
  if (name == "bohr") return core::Strategy::Bohr;
  throw UsageError("unknown scheme '" + name + "'");
}

std::vector<core::Strategy> parse_schemes(const std::string& list) {
  std::vector<core::Strategy> out;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(parse_strategy(item));
  }
  if (out.empty()) throw UsageError("--schemes resolved to nothing");
  return out;
}

void require(bool ok, const std::string& message) {
  if (!ok) throw UsageError(message);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);

    core::ExperimentConfig cfg;
    cfg.workload = parse_workload(flags.get("workload", "bigdata"));
    const std::int64_t datasets = flags.get_int("datasets", 12);
    require(datasets > 0, "--datasets must be positive");
    cfg.n_datasets = static_cast<std::size_t>(datasets);
    cfg.generator.sites = 10;
    const std::int64_t rows = flags.get_int("rows", 480);
    require(rows > 0, "--rows must be positive");
    cfg.generator.rows_per_site = static_cast<std::size_t>(rows);
    const double gb_per_site = flags.get_double("gb-per-site", 40.0);
    require(gb_per_site > 0.0, "--gb-per-site must be positive");
    cfg.generator.gb_per_site =
        gb_per_site / static_cast<double>(cfg.n_datasets);
    const std::string placement = flags.get("placement", "random");
    require(placement == "random" || placement == "locality",
            "--placement must be random|locality");
    cfg.generator.placement = placement == "locality"
                                  ? workload::InitialPlacement::LocalityAware
                                  : workload::InitialPlacement::Random;
    const double bandwidth = flags.get_double("bandwidth", 125.0);
    require(bandwidth > 0.0, "--bandwidth must be positive");
    cfg.base_bandwidth = bandwidth * 1e6;
    cfg.lag_seconds = flags.get_double("lag", 60.0);
    require(cfg.lag_seconds > 0.0, "--lag must be positive");
    const std::int64_t probe_k = flags.get_int("probe-k", 30);
    require(probe_k > 0, "--probe-k must be positive");
    cfg.probe_k = static_cast<std::size_t>(probe_k);
    const std::int64_t executors = flags.get_int("executors", 4);
    require(executors > 0, "--executors must be positive");
    cfg.job.machine.executors = static_cast<std::size_t>(executors);
    cfg.job.partition_records = 24;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 20181204));
    cfg.enforce_lag_deadline = flags.get_bool("enforce-lag", false);
    const std::int64_t threads = flags.get_int(
        "threads", static_cast<std::int64_t>(thread_count()));
    require(threads > 0, "--threads must be positive");
    set_thread_count(static_cast<std::size_t>(threads));

    const std::string fault_spec = flags.get("faults", "");
    if (!fault_spec.empty()) {
      try {
        cfg.faults = net::parse_fault_plan(fault_spec);
      } catch (const std::exception& e) {
        throw UsageError(std::string("--faults: ") + e.what());
      }
    }

    const auto schemes =
        parse_schemes(flags.get("schemes", "iridium,iridium-c,bohr"));
    const std::int64_t runs = flags.get_int("runs", 1);
    require(runs >= 1, "--runs must be at least 1");
    const bool csv = flags.get_bool("csv", false);

    const std::string checkpoint_dir = flags.get("checkpoint-dir", "");
    const std::string crash_phase = flags.get("crash-after-phase", "");
    const bool recover = flags.get_bool("recover", false);
    std::int64_t churn_rounds = flags.get_int("churn", 0);
    require(churn_rounds >= 0, "--churn must be non-negative");
    const bool degrade = flags.get_bool("degrade", false);
    const double degrade_budget = flags.get_double("degrade-budget", 60.0);
    require(degrade_budget > 0.0, "--degrade-budget must be positive");
    if (degrade && churn_rounds == 0) churn_rounds = 1;
    const std::string migration = flags.get("migration", "on");
    require(migration == "on" || migration == "off",
            "--migration must be on|off");
    const std::int64_t crash_round = flags.get_int("crash-after-round", 0);
    require(crash_round >= 0, "--crash-after-round must be non-negative");
    require(crash_round == 0 || churn_rounds > 0,
            "--crash-after-round requires --churn");
    require(crash_round == 0 || !checkpoint_dir.empty(),
            "--crash-after-round requires --checkpoint-dir");
    require(crash_phase.empty() || !checkpoint_dir.empty(),
            "--crash-after-phase requires --checkpoint-dir");
    require(!recover || !checkpoint_dir.empty(),
            "--recover requires --checkpoint-dir");
    if (!crash_phase.empty()) {
      const auto& names = core::prepare_phase_names();
      require(std::find(names.begin(), names.end(), crash_phase) !=
                  names.end(),
              "unknown --crash-after-phase=" + crash_phase);
      require(cfg.faults.crash_after_phase.empty(),
              "--crash-after-phase conflicts with a crash: fault clause");
      cfg.faults.crash_after_phase = crash_phase;
    }

    // Serving-mode flags validate up front: a bad rate must exit 2 with
    // usage before any expensive prepare work starts.
    const bool serve = flags.get_bool("serve", false);
    serve::ServeOptions serve_opts;
    {
      const std::int64_t tenants = flags.get_int("tenants", 4);
      require(!serve || tenants > 0, "--tenants must be positive");
      serve_opts.arrivals.tenants = static_cast<std::size_t>(
          std::max<std::int64_t>(tenants, 1));
      serve_opts.arrivals.arrival_rate_qps =
          flags.get_double("arrival-rate", 2.0);
      require(!serve || serve_opts.arrivals.arrival_rate_qps > 0.0,
              "--arrival-rate must be positive");
      serve_opts.arrivals.duration_seconds = flags.get_double("duration", 60.0);
      require(!serve || serve_opts.arrivals.duration_seconds > 0.0,
              "--duration must be positive");
      const std::int64_t batch_size = flags.get_int("batch-size", 8);
      require(!serve || batch_size > 0, "--batch-size must be positive");
      serve_opts.batching.max_batch = static_cast<std::size_t>(
          std::max<std::int64_t>(batch_size, 1));
      serve_opts.batching.max_delay_seconds =
          flags.get_double("batch-delay", 0.25);
      require(!serve || serve_opts.batching.max_delay_seconds >= 0.0,
              "--batch-delay must be non-negative");
      const std::int64_t slots = flags.get_int("slots", 4);
      require(!serve || slots > 0, "--slots must be positive");
      serve_opts.slots =
          static_cast<std::size_t>(std::max<std::int64_t>(slots, 1));
      serve_opts.migration_period_seconds =
          flags.get_double("migration-period", 30.0);
      require(!serve || serve_opts.migration_period_seconds >= 0.0,
              "--migration-period must be non-negative");
      serve_opts.arrivals.seed = cfg.seed;
      serve_opts.faults = cfg.faults;
    }
    require(!serve || churn_rounds == 0, "--serve conflicts with --churn");
    require(!serve || !degrade, "--serve conflicts with --degrade");
    require(!serve || crash_phase.empty(),
            "--serve conflicts with --crash-after-phase");
    require(!serve || crash_round == 0,
            "--serve conflicts with --crash-after-round");
    require(!serve || !recover, "--serve conflicts with --recover");
    require(!serve || checkpoint_dir.empty(),
            "--serve conflicts with --checkpoint-dir");
    require(!serve || runs == 1, "--serve requires --runs=1");
    require(!serve || schemes.size() == 1,
            "--serve requires exactly one scheme");

    for (const auto& unknown : flags.unused()) {
      throw UsageError("unknown flag --" + unknown);
    }

    if (serve) {
      core::Controller controller = core::make_controller(cfg, schemes[0]);
      controller.prepare();
      const serve::ServeReport report =
          serve::run_serving(controller, serve_opts);
      std::printf(
          "serve: scheme=%s tenants=%zu rate=%.3f duration=%.1f "
          "batch_size=%zu batch_delay=%.3f slots=%zu queries=%zu "
          "batches=%zu\n",
          core::to_string(schemes[0]).c_str(), serve_opts.arrivals.tenants,
          serve_opts.arrivals.arrival_rate_qps,
          serve_opts.arrivals.duration_seconds, serve_opts.batching.max_batch,
          serve_opts.batching.max_delay_seconds, serve_opts.slots,
          report.queries, report.batches);
      std::printf(
          "serve: qct_mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f "
          "throughput_qps=%.4f makespan=%.3f digest=%08x\n",
          report.summary.mean_seconds, report.summary.p50_seconds,
          report.summary.p95_seconds, report.summary.p99_seconds,
          report.summary.max_seconds, report.summary.throughput_qps,
          report.makespan_seconds, report.qct.digest());
      std::printf("serve: epochs=%zu migrations=%zu evacuations=%zu\n",
                  report.migration_epochs, report.migrations,
                  report.evacuations);
      for (std::size_t t = 0; t < report.tenant_summary.size(); ++t) {
        const LatencySummary& s = report.tenant_summary[t];
        std::printf(
            "serve: tenant=%zu queries=%zu mean=%.6f p50=%.6f p95=%.6f "
            "p99=%.6f\n",
            t, s.count, s.mean_seconds, s.p50_seconds, s.p95_seconds,
            s.p99_seconds);
      }
      return 0;
    }

    if (churn_rounds > 0) {
      require(runs == 1, "--churn requires --runs=1");
      require(crash_phase.empty(),
              "--churn conflicts with --crash-after-phase");
      core::ChurnOptions churn;
      churn.rounds = static_cast<std::size_t>(churn_rounds);
      churn.migration = migration == "on";
      churn.checkpoint_dir = checkpoint_dir;
      churn.crash_after_round = static_cast<std::size_t>(crash_round);
      churn.recover = recover;
      churn.degrade = degrade;
      churn.degrade_options.deadline.total_seconds = degrade_budget;
      const core::ChurnRunResult result =
          core::run_churn_experiment(cfg, churn);
      if (result.recovered) {
        std::printf("churn: recovered from checkpoint\n");
      }
      const LatencySummary qs = result.qct.summarize(0.0);
      std::printf(
          "churn: rounds=%zu queries=%zu qct_mean=%.6f qct_p50=%.6f "
          "qct_p95=%.6f qct_p99=%.6f qct_max=%.6f qct_digest=%08x "
          "migrations=%zu evacuations=%zu speculations=%zu "
          "max_slowdown=%.3f snapshots=%zu log_crc32=%08x\n",
          result.rounds_run, result.queries_run, result.avg_qct_seconds,
          qs.p50_seconds, qs.p95_seconds, qs.p99_seconds, qs.max_seconds,
          result.qct.digest(), result.migrations, result.evacuations,
          result.speculations, result.max_reduce_slowdown,
          result.snapshots_written, result.migration_log_crc32);
      if (degrade) {
        for (const core::DegradedAnswer& a : result.degraded.answers) {
          std::printf(
              "degraded: round=%llu dataset=%u spec=%u mode=%s "
              "value=%.6g exact=%.6g err_est=%.4f coverage=%.4f "
              "sim=%.4f sub=%d parts=%u/%u/%u retries=%u qct=%.3f\n",
              static_cast<unsigned long long>(a.round), a.dataset, a.spec,
              core::to_string(a.mode), a.value, a.exact_value,
              a.error_estimate, a.coverage, a.similarity,
              a.substitute_dataset == core::DegradedAnswer::kNoSubstitute
                  ? -1
                  : static_cast<int>(a.substitute_dataset),
              a.partitions_exact, a.partitions_substituted,
              a.partitions_dropped, a.retries, a.qct_seconds);
        }
        const core::DegradedReport& rep = result.degraded;
        std::printf(
            "degrade: queries=%llu exact=%llu partial=%llu "
            "substituted=%llu prior=%llu escalations=%llu retries=%llu "
            "report_crc32=%08x\n",
            static_cast<unsigned long long>(rep.queries_total),
            static_cast<unsigned long long>(rep.exact),
            static_cast<unsigned long long>(rep.partial),
            static_cast<unsigned long long>(rep.substituted),
            static_cast<unsigned long long>(rep.prior),
            static_cast<unsigned long long>(rep.escalations),
            static_cast<unsigned long long>(rep.retries), rep.digest());
      }
      if (result.crashed) {
        std::fprintf(stderr, "bohr_sim: injected crash after round %zu\n",
                     result.rounds_run);
        std::fflush(nullptr);
        std::_Exit(3);
      }
      return 0;
    }

    if (!checkpoint_dir.empty()) {
      require(schemes.size() == 1,
              "--checkpoint-dir requires exactly one scheme");
      require(runs == 1, "--checkpoint-dir requires --runs=1");
      core::Controller controller = core::make_controller(cfg, schemes[0]);
      core::CheckpointManager checkpoints(checkpoint_dir, /*keep_snapshots=*/2,
                                          &controller.options().faults);
      const core::PrepareReport* report = nullptr;
      try {
        if (recover) {
          core::RecoveryManager recovery(checkpoint_dir);
          core::RecoveryResult found = recovery.recover(controller);
          if (found.recovered) {
            std::printf(
                "checkpoint: recovered snapshot %zu (%zu rejected), "
                "resuming after step %zu/%zu\n",
                found.snapshot_seq, found.snapshots_rejected,
                found.progress.completed_steps,
                core::Controller::kPrepareStepCount);
            report = &core::resume_prepare(
                controller, std::move(found.progress), checkpoints);
          } else {
            std::printf(
                "checkpoint: no intact snapshot (%zu rejected), preparing "
                "from scratch\n",
                found.snapshots_rejected);
            report = &core::checkpointed_prepare(controller, checkpoints);
          }
        } else {
          report = &core::checkpointed_prepare(controller, checkpoints);
        }
      } catch (const core::CrashInjected& e) {
        std::fprintf(stderr, "bohr_sim: %s\n", e.what());
        std::fflush(nullptr);
        std::_Exit(3);  // simulated crash: no destructors, like a real kill
      }
      const std::string image = core::serialize_prepare_report(*report);
      std::printf(
          "prepare-report crc32=%08x bytes=%zu bytes_moved=%.0f "
          "rows_moved=%zu snapshots=%zu\n",
          crc32(image), image.size(), report->bytes_moved,
          report->rows_moved, checkpoints.snapshots_written());
      return 0;
    }

    TablePrinter table({"scheme", "QCT mean (s)", "QCT std", "reduction mean (%)",
                        "reduction std"});
    for (const auto& outcome : core::run_workload_repeated(
             cfg, schemes, static_cast<std::size_t>(runs))) {
      table.add_row({core::to_string(outcome.strategy),
                     TablePrinter::num(outcome.mean_qct_seconds, 3),
                     TablePrinter::num(outcome.stddev_qct_seconds, 3),
                     TablePrinter::num(outcome.mean_reduction_percent, 2),
                     TablePrinter::num(outcome.stddev_reduction_percent, 2)});
    }
    std::printf("%s", csv ? table.to_csv().c_str()
                          : table.to_string().c_str());
    return 0;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

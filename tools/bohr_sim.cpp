// bohr_sim — command-line driver for the Bohr experiment harness.
//
// Examples:
//   bohr_sim --workload=bigdata --datasets=12 --schemes=iridium-c,bohr
//   bohr_sim --workload=tpcds --placement=locality --runs=5 --csv
//   bohr_sim --workload=facebook --probe-k=100 --lag=30 --seed=7
//
// Flags (defaults in brackets):
//   --workload    bigdata | tpcds | facebook            [bigdata]
//   --schemes     comma list of centralized,iridium,iridium-c,bohr-sim,
//                 bohr-joint,bohr-rdd,bohr              [iridium,iridium-c,bohr]
//   --datasets    dataset count                         [12]
//   --rows        rows per site per dataset             [480]
//   --gb-per-site total GB per site across datasets     [40]
//   --bandwidth   base-tier uplink, MB/s                [125]
//   --lag         seconds between recurring queries     [60]
//   --probe-k     probe records per dataset             [30]
//   --placement   random | locality                     [random]
//   --executors   executors per machine                 [4]
//   --seed        experiment seed                       [20181204]
//   --runs        repeated runs (mean +/- std output)   [1]
//   --csv         emit CSV instead of an aligned table
#include <cstdio>
#include <sstream>

#include "common/flags.h"
#include "common/table.h"
#include "core/experiment.h"

namespace {

using namespace bohr;

workload::WorkloadKind parse_workload(const std::string& name) {
  if (name == "bigdata") return workload::WorkloadKind::BigData;
  if (name == "tpcds") return workload::WorkloadKind::TpcDs;
  if (name == "facebook") return workload::WorkloadKind::Facebook;
  throw ContractViolation("unknown --workload=" + name);
}

core::Strategy parse_strategy(const std::string& name) {
  if (name == "centralized") return core::Strategy::Centralized;
  if (name == "iridium") return core::Strategy::Iridium;
  if (name == "iridium-c") return core::Strategy::IridiumC;
  if (name == "bohr-sim") return core::Strategy::BohrSim;
  if (name == "bohr-joint") return core::Strategy::BohrJoint;
  if (name == "bohr-rdd") return core::Strategy::BohrRdd;
  if (name == "bohr") return core::Strategy::Bohr;
  throw ContractViolation("unknown scheme '" + name + "'");
}

std::vector<core::Strategy> parse_schemes(const std::string& list) {
  std::vector<core::Strategy> out;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(parse_strategy(item));
  }
  if (out.empty()) throw ContractViolation("--schemes resolved to nothing");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);

    core::ExperimentConfig cfg;
    cfg.workload = parse_workload(flags.get("workload", "bigdata"));
    cfg.n_datasets = static_cast<std::size_t>(flags.get_int("datasets", 12));
    cfg.generator.sites = 10;
    cfg.generator.rows_per_site =
        static_cast<std::size_t>(flags.get_int("rows", 480));
    cfg.generator.gb_per_site =
        flags.get_double("gb-per-site", 40.0) /
        static_cast<double>(cfg.n_datasets);
    cfg.generator.placement = flags.get("placement", "random") == "locality"
                                  ? workload::InitialPlacement::LocalityAware
                                  : workload::InitialPlacement::Random;
    cfg.base_bandwidth = flags.get_double("bandwidth", 125.0) * 1e6;
    cfg.lag_seconds = flags.get_double("lag", 60.0);
    cfg.probe_k = static_cast<std::size_t>(flags.get_int("probe-k", 30));
    cfg.job.machine.executors =
        static_cast<std::size_t>(flags.get_int("executors", 4));
    cfg.job.partition_records = 24;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 20181204));

    const auto schemes =
        parse_schemes(flags.get("schemes", "iridium,iridium-c,bohr"));
    const auto runs = static_cast<std::size_t>(flags.get_int("runs", 1));
    const bool csv = flags.get_bool("csv", false);

    for (const auto& unknown : flags.unused()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", unknown.c_str());
      return 2;
    }

    TablePrinter table({"scheme", "QCT mean (s)", "QCT std", "reduction mean (%)",
                        "reduction std"});
    for (const auto& outcome :
         core::run_workload_repeated(cfg, schemes, runs)) {
      table.add_row({core::to_string(outcome.strategy),
                     TablePrinter::num(outcome.mean_qct_seconds, 3),
                     TablePrinter::num(outcome.stddev_qct_seconds, 3),
                     TablePrinter::num(outcome.mean_reduction_percent, 2),
                     TablePrinter::num(outcome.stddev_reduction_percent, 2)});
    }
    std::printf("%s", csv ? table.to_csv().c_str()
                          : table.to_string().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

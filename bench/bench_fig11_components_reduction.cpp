// Figure 11: component microbenchmark — per-site data reduction of
// Bohr-Sim / Bohr-Joint / Bohr-RDD vs Iridium-C (big-data workload).
//
// Paper's shape: Bohr-Sim clearly above Iridium-C (which can go negative
// at some sites); Bohr-Joint ~15-20% above Bohr-Sim; Bohr-RDD ~= Bohr-Sim
// (RDD clustering does not change shuffle volume).
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

core::WorkloadRun g_run;

void BM_Fig11(benchmark::State& state) {
  for (auto _ : state) {
    g_run = core::run_workload(
        bench_config(workload::WorkloadKind::BigData,
                     workload::InitialPlacement::Random),
        component_strategies());
  }
  state.counters["bohr_sim_mean_pct"] =
      g_run.mean_data_reduction_percent(core::Strategy::BohrSim);
  state.counters["bohr_joint_mean_pct"] =
      g_run.mean_data_reduction_percent(core::Strategy::BohrJoint);
}
BENCHMARK(BM_Fig11)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(strategy_headers("site", component_strategies()));
    fill_reduction_table(g_run, component_strategies(), table);
    table.print("Figure 11: component benefit in data reduction (%)");
  });
}

// Ablation: optimization objective — WAN bytes (Geode/WANalytics) vs
// completion time (Iridium, Bohr). The §9 argument in one table: the
// byte-minimizing scheme ships the fewest bytes yet delivers worse QCT,
// because all shuffle funnels through one hub's links.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string scheme;
  double qct;
  double wan_gb;
  double reduction_pct;
};
std::vector<Row> g_rows;

void BM_Objectives(benchmark::State& state) {
  const auto cfg = bench_config(workload::WorkloadKind::BigData);
  const std::vector<core::Strategy> schemes{
      core::Strategy::Geode, core::Strategy::Iridium,
      core::Strategy::IridiumC, core::Strategy::Bohr};
  for (auto _ : state) {
    g_rows.clear();
    const auto run = core::run_workload(cfg, schemes);
    for (const auto s : schemes) {
      const auto& o = run.outcome(s);
      g_rows.push_back(Row{core::to_string(s), o.avg_qct_seconds,
                           o.wan_shuffle_bytes / 1e9,
                           run.mean_data_reduction_percent(s)});
    }
  }
  state.counters["geode_wan_gb"] = g_rows[0].wan_gb;
  state.counters["geode_qct"] = g_rows[0].qct;
}
BENCHMARK(BM_Objectives)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(
        {"scheme", "avg QCT (s)", "WAN shuffle (GB)", "data reduction (%)"});
    for (const auto& row : g_rows) {
      table.add_row({row.scheme, TablePrinter::num(row.qct, 2),
                     TablePrinter::num(row.wan_gb, 1),
                     TablePrinter::num(row.reduction_pct, 2)});
    }
    table.print(
        "Ablation: objective — minimize WAN bytes (Geode) vs minimize QCT");
  });
}

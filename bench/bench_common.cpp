#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "common/phase_timer.h"

namespace bohr::bench {

namespace {

std::size_t env_datasets() {
  if (const char* env = std::getenv("BOHR_BENCH_DATASETS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 12;
}

}  // namespace

core::ExperimentConfig bench_config(workload::WorkloadKind kind,
                                    workload::InitialPlacement placement) {
  core::ExperimentConfig cfg;
  cfg.workload = kind;
  cfg.n_datasets = env_datasets();
  cfg.generator.sites = 10;
  cfg.generator.rows_per_site = 480;
  // 40GB/site per workload (the paper's setting), split across datasets.
  cfg.generator.gb_per_site = 40.0 / static_cast<double>(cfg.n_datasets);
  cfg.generator.placement = placement;
  cfg.base_bandwidth = 125e6;
  cfg.lag_seconds = 60.0;
  cfg.probe_k = 30;
  cfg.job.partition_records = 24;
  cfg.job.machine.executors = 4;
  cfg.seed = 20181204;  // CoNEXT'18 presentation day
  return cfg;
}

const std::vector<core::Strategy>& all_strategies() {
  static const std::vector<core::Strategy> kAll{
      core::Strategy::Iridium,   core::Strategy::IridiumC,
      core::Strategy::BohrSim,   core::Strategy::BohrJoint,
      core::Strategy::BohrRdd,   core::Strategy::Bohr,
  };
  return kAll;
}

const std::vector<core::Strategy>& headline_strategies() {
  static const std::vector<core::Strategy> kHeadline{
      core::Strategy::Iridium, core::Strategy::IridiumC,
      core::Strategy::Bohr};
  return kHeadline;
}

const std::vector<core::Strategy>& component_strategies() {
  static const std::vector<core::Strategy> kComponents{
      core::Strategy::IridiumC, core::Strategy::BohrSim,
      core::Strategy::BohrJoint, core::Strategy::BohrRdd};
  return kComponents;
}

void ResultTable::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s\nCSV:\n%s\n", title.c_str(),
              table_.to_string().c_str(), table_.to_csv().c_str());
}

namespace {

/// Strips `--threads=N` / `--threads N` from argv (google-benchmark
/// rejects unknown flags) and applies it to the parallel runtime.
void consume_threads_flag(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long threads = 0;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::strtol(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = std::strtol(argv[++i], nullptr, 10);
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (threads <= 0) {
      std::fprintf(stderr, "invalid --threads value\n");
      std::exit(2);
    }
    set_thread_count(static_cast<std::size_t>(threads));
  }
  argc = out;
  argv[argc] = nullptr;
}

}  // namespace

namespace {

/// Basename of argv[0] without a trailing ".exe"-style suffix — the
/// bench's name for the JSON result file.
std::string bench_name(const char* argv0) {
  std::string name = argv0 != nullptr ? argv0 : "bench";
  const std::size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.empty()) name = "bench";
  return name;
}

/// Writes the same JSON the BENCH_JSON epilogue prints into
/// BENCH_<name>.json (BOHR_BENCH_JSON_DIR overrides the directory).
/// Best effort: an unwritable directory is reported, never fatal — the
/// bench's measurements are already on stdout.
void write_bench_json(const std::string& name, const std::string& json) {
  std::string path;
  if (const char* dir = std::getenv("BOHR_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/";
  }
  path += "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "%s\n", json.c_str());
  std::fclose(out);
}

std::vector<std::pair<std::string, std::string>>& extra_json_fields() {
  static std::vector<std::pair<std::string, std::string>> fields;
  return fields;
}

}  // namespace

void add_bench_json_field(const std::string& key,
                          const std::string& json_value) {
  extra_json_fields().emplace_back(key, json_value);
}

int run_bench_main(int argc, char** argv,
                   const std::function<void()>& epilogue) {
  const std::string name = bench_name(argc > 0 ? argv[0] : nullptr);
  consume_threads_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (epilogue) epilogue();
  // Machine-readable run metadata: thread count plus accumulated
  // per-phase wall-clock totals (grep for "BENCH_JSON:"), followed by
  // any fields the bench registered via add_bench_json_field. The same
  // object also lands in BENCH_<name>.json so harnesses can collect
  // results without scraping stdout.
  char threads_prefix[64];
  std::snprintf(threads_prefix, sizeof(threads_prefix),
                "{\"name\":\"%s\",\"threads\":%zu,\"phases\":",
                name.c_str(), thread_count());
  std::string json = threads_prefix + phase_json();
  for (const auto& [key, value] : extra_json_fields()) {
    json += ",\"" + key + "\":" + value;
  }
  json += "}";
  std::printf("BENCH_JSON: %s\n", json.c_str());
  write_bench_json(name, json);
  return 0;
}

}  // namespace bohr::bench

namespace bohr::bench {

std::vector<LabeledRun> run_three_workloads(
    workload::InitialPlacement placement,
    const std::vector<core::Strategy>& strategies) {
  std::vector<LabeledRun> runs;
  runs.push_back({"big-data", core::run_workload(
                                  bench_config(workload::WorkloadKind::BigData,
                                               placement),
                                  strategies)});
  runs.push_back({"TPC-DS", core::run_workload(
                                bench_config(workload::WorkloadKind::TpcDs,
                                             placement),
                                strategies)});
  runs.push_back(
      {"Facebook", core::run_workload(
                       bench_config(workload::WorkloadKind::Facebook,
                                    placement),
                       strategies)});
  return runs;
}

std::vector<std::string> strategy_headers(
    std::string first, const std::vector<core::Strategy>& strategies) {
  std::vector<std::string> headers{std::move(first)};
  for (const auto s : strategies) headers.push_back(core::to_string(s));
  return headers;
}

void fill_qct_table(const std::vector<LabeledRun>& runs,
                    const std::vector<core::Strategy>& strategies,
                    ResultTable& table) {
  using engine::QueryKind;
  // Big-data splits into its three query kinds (paper's first 3 bars).
  const core::WorkloadRun& bigdata = runs.at(0).run;
  const struct {
    QueryKind kind;
    const char* label;
  } kBigDataRows[] = {{QueryKind::Scan, "Big data (scan)"},
                      {QueryKind::Udf, "Big data (UDF)"},
                      {QueryKind::Aggregation, "Big data (aggr)"}};
  for (const auto& row : kBigDataRows) {
    std::vector<std::string> cells{row.label};
    for (const auto s : strategies) {
      const auto& by_kind = bigdata.outcome(s).qct_by_kind;
      const auto it = by_kind.find(row.kind);
      cells.push_back(TablePrinter::num(
          it == by_kind.end() ? 0.0 : it->second, 2));
    }
    table.add_row(std::move(cells));
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    std::vector<std::string> cells{runs[w].label};
    for (const auto s : strategies) {
      cells.push_back(
          TablePrinter::num(runs[w].run.outcome(s).avg_qct_seconds, 2));
    }
    table.add_row(std::move(cells));
  }
}

void fill_reduction_table(const core::WorkloadRun& run,
                          const std::vector<core::Strategy>& strategies,
                          ResultTable& table) {
  const net::WanTopology topo = run.config.make_topology();
  std::vector<std::vector<double>> per_strategy;
  per_strategy.reserve(strategies.size());
  for (const auto s : strategies) {
    per_strategy.push_back(run.data_reduction_percent(s));
  }
  for (net::SiteId i = 0; i < topo.site_count(); ++i) {
    std::vector<std::string> cells{topo.site(i).name};
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      cells.push_back(TablePrinter::num(per_strategy[s][i], 2));
    }
    table.add_row(std::move(cells));
  }
  std::vector<std::string> mean_row{"MEAN"};
  for (const auto s : strategies) {
    mean_row.push_back(
        TablePrinter::num(run.mean_data_reduction_percent(s), 2));
  }
  table.add_row(std::move(mean_row));
}

}  // namespace bohr::bench

// Ablation: §1's strawman — aggregate every byte to one central site
// before querying. The point the paper opens with: centralization
// cannot fit the lag between recurring queries (and saturates the hub's
// downlink), which is why in-place processing plus selective movement
// wins.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string scheme;
  double qct_seconds;
  double moved_gb;
  double movement_seconds;
  bool fits_lag;
};
std::vector<Row> g_rows;

void BM_AblationCentralized(benchmark::State& state) {
  const auto cfg = bench_config(workload::WorkloadKind::BigData);
  for (auto _ : state) {
    g_rows.clear();
    const auto run = core::run_workload(
        cfg, {core::Strategy::Centralized, core::Strategy::IridiumC,
              core::Strategy::Bohr});
    for (const auto s : {core::Strategy::Centralized,
                         core::Strategy::IridiumC, core::Strategy::Bohr}) {
      const auto& o = run.outcome(s);
      g_rows.push_back(Row{core::to_string(s), o.avg_qct_seconds,
                           o.prep.bytes_moved / 1e9,
                           o.prep.movement_seconds,
                           o.prep.movement_within_lag});
    }
  }
  state.counters["centralized_move_s"] = g_rows[0].movement_seconds;
}
BENCHMARK(BM_AblationCentralized)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"scheme", "avg QCT (s)", "moved (GB)",
                       "movement time (s)", "fits 60s lag?"});
    for (const auto& row : g_rows) {
      table.add_row({row.scheme, TablePrinter::num(row.qct_seconds, 2),
                     TablePrinter::num(row.moved_gb, 1),
                     TablePrinter::num(row.movement_seconds, 1),
                     row.fits_lag ? "yes" : "NO"});
    }
    table.print("Ablation: centralized aggregation strawman (Section 1)");
  });
}

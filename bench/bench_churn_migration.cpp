// Churn benchmark: the elastic migration controller under site churn
// (bench_tab7's dynamic-workload shape, with the fault plane active).
//
// One Bohr controller prepares, then runs its query mix round after
// round while the fault plan takes a site dark mid-run and slows a
// second one. Migration on relocates reduce buckets off the sick sites
// between rounds (no joint-LP re-run); migration off freezes the same
// initial bucket placement. The headline number is the churn QCT ratio
// — migration on must not be worse.
#include "bench_common.h"

#include <algorithm>
#include <cstdio>

#include "net/faults.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string workload;
  core::ChurnRunResult on;
  core::ChurnRunResult off;
};
std::vector<Row> g_rows;

core::ExperimentConfig churn_config(workload::WorkloadKind kind) {
  auto cfg = bench_config(kind);
  cfg.n_datasets = std::min<std::size_t>(cfg.n_datasets, 6);
  cfg.generator.gb_per_site = 40.0 / static_cast<double>(cfg.n_datasets);
  // Run-clock churn: site 6 goes dark for the middle rounds, site 2
  // crawls at 6x for the back half. Rounds execute at lag + r * lag
  // (60, 120, ... with the default 60s lag).
  cfg.faults = net::parse_fault_plan(
      "outage:site=6,start=100,end=400;"
      "slow-site:site=2,start=250,end=520,factor=6");
  return cfg;
}

void run_churn(workload::WorkloadKind kind, const char* label) {
  const auto cfg = churn_config(kind);
  core::ChurnOptions churn;
  churn.rounds = 8;
  churn.migration = true;
  Row row;
  row.workload = label;
  row.on = core::run_churn_experiment(cfg, churn);
  churn.migration = false;
  row.off = core::run_churn_experiment(cfg, churn);
  g_rows.push_back(std::move(row));
}

void BM_ChurnMigration(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    run_churn(workload::WorkloadKind::BigData, "Big Data");
    run_churn(workload::WorkloadKind::TpcDs, "TPC-DS");
  }
  if (!g_rows.empty()) {
    state.counters["bigdata_qct_on_s"] = g_rows[0].on.avg_qct_seconds;
    state.counters["bigdata_qct_off_s"] = g_rows[0].off.avg_qct_seconds;
    state.counters["bigdata_migrations"] =
        static_cast<double>(g_rows[0].on.migrations +
                            g_rows[0].on.evacuations);
  }
}
BENCHMARK(BM_ChurnMigration)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"workload", "QCT mig-on (s)", "QCT mig-off (s)",
                       "on/off", "moves", "evac", "specul", "log crc32"});
    for (const auto& row : g_rows) {
      const double ratio =
          row.off.avg_qct_seconds > 0.0
              ? row.on.avg_qct_seconds / row.off.avg_qct_seconds
              : 1.0;
      char crc[16];
      std::snprintf(crc, sizeof(crc), "%08x", row.on.migration_log_crc32);
      table.add_row({row.workload,
                     TablePrinter::num(row.on.avg_qct_seconds, 3),
                     TablePrinter::num(row.off.avg_qct_seconds, 3),
                     TablePrinter::num(ratio, 3),
                     std::to_string(row.on.migrations),
                     std::to_string(row.on.evacuations),
                     std::to_string(row.on.speculations), crc});
    }
    table.print("Churn: migration on vs off under site outage + slowdown");
  });
}

// Ablation: DIMSUM's oversampling parameter gamma trades computation for
// accuracy (§6). Sweep gamma over synthetic RDD partitions and report
// pairs examined, mean absolute error vs exact Jaccard, and wall time.
#include "bench_common.h"

#include <cmath>

#include "common/rng.h"
#include "common/timer.h"
#include "similarity/dimsum.h"
#include "similarity/metrics.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  double gamma;
  std::uint64_t examined;
  std::uint64_t skipped;
  double mae;
  double millis;
};
std::vector<Row> g_rows;

std::vector<std::vector<std::uint64_t>> make_partitions() {
  std::vector<std::vector<std::uint64_t>> parts;
  Rng rng(7);
  // 48 partitions in similarity families of 4, with heterogeneous sizes.
  for (int family = 0; family < 12; ++family) {
    const std::uint64_t base = static_cast<std::uint64_t>(family) * 100000;
    const auto size = static_cast<std::size_t>(rng.range(50, 800));
    for (int member = 0; member < 4; ++member) {
      std::vector<std::uint64_t> keys;
      keys.reserve(size);
      for (std::size_t k = 0; k < size; ++k) {
        // ~70% family-shared keys, 30% private noise.
        keys.push_back(rng.bernoulli(0.7)
                           ? base + rng.below(size)
                           : base + 50000 + rng.below(10 * size));
      }
      parts.push_back(std::move(keys));
    }
  }
  return parts;
}

void BM_DimsumGamma(benchmark::State& state) {
  const auto parts = make_partitions();

  // Exact ground truth for the error metric.
  similarity::DimsumParams exact_params;
  exact_params.exact = true;
  exact_params.gamma = 1e18;
  const auto truth = similarity::dimsum_jaccard(parts, exact_params);

  const double gamma = static_cast<double>(state.range(0)) / 100.0;
  Row row{gamma, 0, 0, 0.0, 0.0};
  for (auto _ : state) {
    similarity::DimsumParams params;
    params.gamma = gamma;
    params.num_hashes = 64;
    const WallTimer timer;
    const auto result = similarity::dimsum_jaccard(parts, params);
    row.millis = timer.elapsed_seconds() * 1e3;
    row.examined = result.pairs_examined;
    row.skipped = result.pairs_skipped;
    double err = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        err += std::abs(result.matrix.get(i, j) - truth.matrix.get(i, j));
        ++count;
      }
    }
    row.mae = err / static_cast<double>(count);
  }
  state.counters["examined"] = static_cast<double>(row.examined);
  state.counters["mae"] = row.mae;
  g_rows.push_back(row);
}
// Args are gamma*100 (benchmark args are integers).
BENCHMARK(BM_DimsumGamma)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(
        {"gamma", "pairs examined", "pairs skipped", "MAE vs exact",
         "time (ms)"});
    for (const auto& row : g_rows) {
      table.add_row({TablePrinter::num(row.gamma, 2),
                     std::to_string(row.examined),
                     std::to_string(row.skipped),
                     TablePrinter::num(row.mae, 4),
                     TablePrinter::num(row.millis, 3)});
    }
    table.print("Ablation: DIMSUM gamma (accuracy vs computation)");
  });
}

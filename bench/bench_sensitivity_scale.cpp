// Sensitivity: how QCT, data reduction, and LP solve time scale with the
// number of datasets sharing the placement (the paper runs 300; the
// bench default is 12 — this sweep shows nothing qualitative changes in
// between and that the LP stays cheap).
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::size_t datasets;
  double iridium_c_qct;
  double bohr_qct;
  double bohr_reduction;
  double lp_seconds;
};
std::vector<Row> g_rows;

void BM_Scale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cfg = bench_config(workload::WorkloadKind::BigData);
  cfg.n_datasets = n;
  cfg.generator.gb_per_site = 40.0 / static_cast<double>(n);
  Row row{n, 0, 0, 0, 0};
  for (auto _ : state) {
    const auto run = core::run_workload(
        cfg, {core::Strategy::IridiumC, core::Strategy::Bohr});
    row.iridium_c_qct = run.outcome(core::Strategy::IridiumC).avg_qct_seconds;
    row.bohr_qct = run.outcome(core::Strategy::Bohr).avg_qct_seconds;
    row.bohr_reduction = run.mean_data_reduction_percent(core::Strategy::Bohr);
    row.lp_seconds =
        run.outcome(core::Strategy::Bohr).prep.decision.lp_seconds;
  }
  state.counters["lp_s"] = row.lp_seconds;
  g_rows.push_back(row);
}
BENCHMARK(BM_Scale)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(18)
    ->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"datasets", "Iridium-C QCT (s)", "Bohr QCT (s)",
                       "Bohr reduction (%)", "LP time (s)"});
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.datasets),
                     TablePrinter::num(row.iridium_c_qct, 2),
                     TablePrinter::num(row.bohr_qct, 2),
                     TablePrinter::num(row.bohr_reduction, 2),
                     TablePrinter::num(row.lp_seconds, 4)});
    }
    table.print("Sensitivity: dataset count (40GB/site total, split evenly)");
  });
}

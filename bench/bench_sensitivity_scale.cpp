// Sensitivity: how QCT, data reduction, and LP solve time scale with the
// number of datasets sharing the placement (the paper runs 300; the
// bench default is 12 — this sweep shows nothing qualitative changes in
// between and that the LP stays cheap), plus a site-count axis at fixed
// total data exercising the revised simplex on LPs of hundreds of sites.
#include "bench_common.h"

#include "core/placement.h"
#include "net/topology.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::size_t datasets;
  double iridium_c_qct;
  double bohr_qct;
  double bohr_reduction;
  double lp_seconds;
};
std::vector<Row> g_rows;

void BM_Scale(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cfg = bench_config(workload::WorkloadKind::BigData);
  cfg.n_datasets = n;
  cfg.generator.gb_per_site = 40.0 / static_cast<double>(n);
  Row row{n, 0, 0, 0, 0};
  for (auto _ : state) {
    const auto run = core::run_workload(
        cfg, {core::Strategy::IridiumC, core::Strategy::Bohr});
    row.iridium_c_qct = run.outcome(core::Strategy::IridiumC).avg_qct_seconds;
    row.bohr_qct = run.outcome(core::Strategy::Bohr).avg_qct_seconds;
    row.bohr_reduction = run.mean_data_reduction_percent(core::Strategy::Bohr);
    row.lp_seconds =
        run.outcome(core::Strategy::Bohr).prep.decision.lp_seconds;
  }
  state.counters["lp_s"] = row.lp_seconds;
  g_rows.push_back(row);
}
BENCHMARK(BM_Scale)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(18)
    ->Arg(24);

// ---- site-count axis ---------------------------------------------------
// Fixed total data (120 GB across 12 datasets) spread over a growing WAN:
// the movement LP has O(A * n^2) columns, so this axis is what separates
// the dense tableau (O(rows * cols) memory, unusable past ~32 sites) from
// the revised engine (O(nonzeros)). Solves the placement LP directly —
// no simulator — so the row measures the solver, nothing else.

struct SiteRow {
  std::size_t sites;
  double lp_seconds;
  std::size_t lp_iterations;
  std::size_t lp_peak_bytes;
};
std::vector<SiteRow> g_site_rows;

core::PlacementProblem site_scale_problem(std::size_t n_sites) {
  constexpr std::size_t kDatasets = 12;
  constexpr double kTotalGb = 120.0;
  core::PlacementProblem problem;
  problem.lag_seconds = 30.0;
  // Three bandwidth tiers like the paper's WAN, round-robined over sites.
  std::vector<net::Site> sites(n_sites);
  Rng rng(42);
  for (std::size_t i = 0; i < n_sites; ++i) {
    const double tier = i % 3 == 0 ? 5.0 : (i % 3 == 1 ? 2.0 : 1.0);
    sites[i].name = "site" + std::to_string(i);
    sites[i].uplink_bytes_per_sec = tier * 50e6;
    sites[i].downlink_bytes_per_sec = tier * 50e6;
  }
  problem.topology = net::WanTopology(std::move(sites));
  const double bytes_per_cell =
      kTotalGb * 1e9 / static_cast<double>(kDatasets * n_sites);
  for (std::size_t a = 0; a < kDatasets; ++a) {
    core::DatasetPlacementInput d;
    d.dataset_id = a;
    d.reduction_ratio = rng.uniform(0.05, 0.3);
    d.query_count = static_cast<std::size_t>(rng.range(1, 8));
    for (std::size_t i = 0; i < n_sites; ++i) {
      d.input_bytes.push_back(bytes_per_cell * rng.uniform(0.2, 1.8));
      d.self_similarity.push_back(rng.uniform(0.2, 0.8));
    }
    problem.datasets.push_back(std::move(d));
  }
  return problem;
}

void BM_SiteScale(benchmark::State& state) {
  const auto n_sites = static_cast<std::size_t>(state.range(0));
  const auto problem = site_scale_problem(n_sites);
  core::JointLpOptions options;
  options.max_rounds = 2;
  core::PlacementDecision decision;
  for (auto _ : state) {
    decision = core::joint_lp_placement(problem, options);
    benchmark::DoNotOptimize(decision.predicted_shuffle_seconds);
  }
  state.counters["lp_s"] = decision.lp_seconds;
  state.counters["peak_MB"] =
      static_cast<double>(decision.lp_peak_bytes) / 1e6;
  g_site_rows.push_back(SiteRow{n_sites, decision.lp_seconds,
                                decision.lp_iterations,
                                decision.lp_peak_bytes});
}
BENCHMARK(BM_SiteScale)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(96);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"datasets", "Iridium-C QCT (s)", "Bohr QCT (s)",
                       "Bohr reduction (%)", "LP time (s)"});
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.datasets),
                     TablePrinter::num(row.iridium_c_qct, 2),
                     TablePrinter::num(row.bohr_qct, 2),
                     TablePrinter::num(row.bohr_reduction, 2),
                     TablePrinter::num(row.lp_seconds, 4)});
    }
    table.print("Sensitivity: dataset count (40GB/site total, split evenly)");

    ResultTable site_table({"sites", "LP time (s)", "simplex pivots",
                            "peak solver bytes"});
    std::string json = "{";
    for (const auto& row : g_site_rows) {
      site_table.add_row({std::to_string(row.sites),
                          TablePrinter::num(row.lp_seconds, 4),
                          std::to_string(row.lp_iterations),
                          std::to_string(row.lp_peak_bytes)});
      if (json.size() > 1) json += ",";
      json += "\"" + std::to_string(row.sites) +
              "\":{\"lp_seconds\":" + TablePrinter::num(row.lp_seconds, 6) +
              ",\"lp_iterations\":" + std::to_string(row.lp_iterations) +
              ",\"lp_peak_bytes\":" + std::to_string(row.lp_peak_bytes) + "}";
    }
    json += "}";
    add_bench_json_field("lp_by_sites", json);
    site_table.print(
        "Sensitivity: site count (120GB total, 12 datasets, LP only)");
  });
}

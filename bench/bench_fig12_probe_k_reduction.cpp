// Figure 12: effect of the probe size k on Bohr's data reduction ratio,
// for big-data (UDF), TPC-DS, and Facebook workloads.
//
// Paper's shape: reduction grows with k and saturates around k = 30;
// k = 100 adds little.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

constexpr std::size_t kProbeSizes[] = {10, 15, 20, 25, 30, 100};

struct KSweepRow {
  std::size_t k;
  double bigdata_pct;
  double tpcds_pct;
  double facebook_pct;
};
std::vector<KSweepRow> g_rows;

double reduction_for(workload::WorkloadKind kind, std::size_t k) {
  auto cfg = bench_config(kind);
  cfg.probe_k = k;
  const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
  return run.mean_data_reduction_percent(core::Strategy::Bohr);
}

void BM_Fig12(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  KSweepRow row{k, 0, 0, 0};
  for (auto _ : state) {
    row.bigdata_pct = reduction_for(workload::WorkloadKind::BigData, k);
    row.tpcds_pct = reduction_for(workload::WorkloadKind::TpcDs, k);
    row.facebook_pct = reduction_for(workload::WorkloadKind::Facebook, k);
  }
  state.counters["bigdata_pct"] = row.bigdata_pct;
  g_rows.push_back(row);
}
BENCHMARK(BM_Fig12)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(30)
    ->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"k", "Bigdata(UDF)", "TPC-DS", "Facebook"});
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.k),
                     TablePrinter::num(row.bigdata_pct, 2),
                     TablePrinter::num(row.tpcds_pct, 2),
                     TablePrinter::num(row.facebook_pct, 2)});
    }
    table.print("Figure 12: probe size k vs data reduction (%)");
  });
}

// Table 7: highly dynamic datasets (§8.6) — 25% of the data present
// initially, the rest arriving in batches between recurring queries;
// Bohr re-runs similarity checking and the LP every five queries.
//
// Paper's shape: dynamic QCT is nearly identical to the normal setting,
// because pre-processing of new data hides in the query lag.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string workload;
  core::DynamicRunResult result;
};
std::vector<Row> g_rows;

void run_dynamic(workload::WorkloadKind kind, const char* label) {
  auto cfg = bench_config(kind);
  // Dynamic runs execute one query per batch; keep the dataset count
  // moderate so the bench stays snappy.
  cfg.n_datasets = std::min<std::size_t>(cfg.n_datasets, 6);
  cfg.generator.gb_per_site = 40.0 / static_cast<double>(cfg.n_datasets);
  g_rows.push_back(Row{
      label, core::run_dynamic_experiment(cfg, /*n_batches=*/15,
                                          /*initial_fraction=*/0.25,
                                          /*replan_every=*/5)});
}

void BM_Tab7(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    run_dynamic(workload::WorkloadKind::TpcDs, "TPC-DS");
    run_dynamic(workload::WorkloadKind::Facebook, "Facebook");
    run_dynamic(workload::WorkloadKind::BigData, "Big Data");
  }
  if (!g_rows.empty()) {
    state.counters["tpcds_dynamic_qct_s"] = g_rows[0].result.dynamic_avg_qct;
  }
}
BENCHMARK(BM_Tab7)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(
        {"workload", "Normal QCT (s)", "Dynamic QCT (s)", "queries",
         "re-plans"});
    for (const auto& row : g_rows) {
      table.add_row({row.workload,
                     TablePrinter::num(row.result.normal_avg_qct, 2),
                     TablePrinter::num(row.result.dynamic_avg_qct, 2),
                     std::to_string(row.result.queries_run),
                     std::to_string(row.result.replans)});
    }
    table.print("Table 7: highly dynamic datasets (normal vs dynamic QCT)");
  });
}

// Thread-count scaling of the two headline timing workloads: the Tab-3
// similarity checking pass (probe exchange over every dataset, k = 100)
// and the Tab-4 end-to-end Bohr run on TPC-DS. Sweeps 1/2/4/8 threads
// and fingerprints every result payload so the determinism contract —
// byte-identical outputs at every thread count — is checked by the bench
// itself, not just asserted.
//
// Expected shape on a many-core box: near-linear speedup on the Tab-3
// checking time (the probe scoring loop dominates), a more modest gain on
// Tab-4 (the engine model and LP solves share the time). On a 1-core box
// the speedup column degenerates to ~1.0x but the FINGERPRINT columns
// must still match exactly.
#include "bench_common.h"

#include <cinttypes>
#include <cstring>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/similarity_service.h"
#include "workload/query_mix.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::size_t threads;
  double tab3_seconds = 0.0;
  std::uint64_t tab3_fingerprint = 0;
  double tab4_seconds = 0.0;
  std::uint64_t tab4_fingerprint = 0;
};
std::vector<Row> g_rows;

std::uint64_t hash_doubles(std::uint64_t h, std::span<const double> values) {
  for (const double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = hash_combine(h, bits);
  }
  return h;
}

// Controller-side dataset states for the Tab-3 workload, built once and
// shared by every thread-count arm (check_similarity only reads them).
const std::vector<core::DatasetState>& tab3_states() {
  static const std::vector<core::DatasetState> states = [] {
    const auto cfg = bench_config(workload::WorkloadKind::BigData);
    std::vector<core::DatasetState> out;
    Rng mix_rng(3);
    for (std::size_t a = 0; a < cfg.n_datasets; ++a) {
      auto bundle = workload::generate_dataset(cfg.workload, a, cfg.generator);
      auto mix = workload::sample_query_mix(bundle, mix_rng);
      out.emplace_back(std::move(bundle), std::move(mix), true);
    }
    return out;
  }();
  return states;
}

void BM_ThreadsScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  set_thread_count(threads);
  Row row;
  row.threads = threads;

  for (auto _ : state) {
    // Tab-3 arm: full probe exchange at k = 100 over every dataset.
    {
      const WallTimer timer;
      std::uint64_t h = fnv1a64("tab3");
      for (const auto& ds : tab3_states()) {
        core::SimilarityOptions options;
        options.probe_k = 100;
        const auto sim = core::check_similarity(ds, options);
        h = hash_doubles(h, sim.self);
        for (const auto& per_site : sim.pair) h = hash_doubles(h, per_site);
        // matched_keys drives movement: fold an order-independent digest
        // of each pair's key set (unordered_set iteration order is not
        // part of the contract).
        for (const auto& per_site : sim.matched_keys) {
          for (const auto& keys : per_site) {
            std::uint64_t set_digest = 0;
            for (const auto k : keys) set_digest ^= mix64(k);
            h = hash_combine(h, set_digest);
          }
        }
        h = hash_doubles(h, std::vector<double>{sim.probe_bytes});
        h = hash_combine(h, sim.probe_pairs_lost);
      }
      row.tab3_seconds = timer.elapsed_seconds();
      row.tab3_fingerprint = h;
    }

    // Tab-4 arm: end-to-end Bohr on TPC-DS.
    {
      const auto cfg = bench_config(workload::WorkloadKind::TpcDs);
      const WallTimer timer;
      const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
      row.tab4_seconds = timer.elapsed_seconds();
      const auto& outcome = run.outcome(core::Strategy::Bohr);
      // QCT embeds measured LP wall-clock (§8.5) — a timing field, not
      // payload — so the fingerprint covers the simulated byte counts
      // and reduction instead.
      std::uint64_t h = fnv1a64("tab4");
      h = hash_doubles(h, outcome.site_shuffle_bytes);
      h = hash_doubles(h, std::vector<double>{
                              outcome.wan_shuffle_bytes,
                              run.mean_data_reduction_percent(
                                  core::Strategy::Bohr)});
      h = hash_combine(h, outcome.qct_by_kind.size());
      row.tab4_fingerprint = h;
    }
  }
  state.counters["tab3_s"] = row.tab3_seconds;
  state.counters["tab4_s"] = row.tab4_seconds;
  g_rows.push_back(row);
}
BENCHMARK(BM_ThreadsScaling)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"threads", "tab3 checking (s)", "tab3 speedup",
                       "tab3 fingerprint", "tab4 e2e (s)", "tab4 speedup",
                       "tab4 fingerprint"});
    const Row* base = nullptr;
    for (const auto& row : g_rows) {
      if (row.threads == 1) base = &row;
    }
    bool identical = true;
    char buffer[32];
    for (const auto& row : g_rows) {
      const double s3 =
          base != nullptr && row.tab3_seconds > 0.0
              ? base->tab3_seconds / row.tab3_seconds
              : 0.0;
      const double s4 =
          base != nullptr && row.tab4_seconds > 0.0
              ? base->tab4_seconds / row.tab4_seconds
              : 0.0;
      if (base != nullptr && (row.tab3_fingerprint != base->tab3_fingerprint ||
                              row.tab4_fingerprint != base->tab4_fingerprint)) {
        identical = false;
      }
      std::vector<std::string> cells{std::to_string(row.threads),
                                     TablePrinter::num(row.tab3_seconds, 4),
                                     TablePrinter::num(s3, 2)};
      std::snprintf(buffer, sizeof(buffer), "%016" PRIx64,
                    row.tab3_fingerprint);
      cells.emplace_back(buffer);
      cells.push_back(TablePrinter::num(row.tab4_seconds, 4));
      cells.push_back(TablePrinter::num(s4, 2));
      std::snprintf(buffer, sizeof(buffer), "%016" PRIx64,
                    row.tab4_fingerprint);
      cells.emplace_back(buffer);
      table.add_row(std::move(cells));
    }
    table.print("Thread scaling: Tab-3 checking + Tab-4 end-to-end");
    std::printf("PAYLOADS_%s\n", identical ? "IDENTICAL" : "DIVERGED");
  });
}

// Figure 8: per-site intermediate data reduction (%) over vanilla Spark,
// random initial placement, big-data workload.
//
// Paper's shape: Bohr ~30% at every site; Iridium-C mid-single-digits to
// ~12%; Iridium near zero and NEGATIVE at some sites (similarity-agnostic
// movement ships data that cannot combine).
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

core::WorkloadRun g_run;

void BM_Fig8(benchmark::State& state) {
  for (auto _ : state) {
    g_run = core::run_workload(
        bench_config(workload::WorkloadKind::BigData,
                     workload::InitialPlacement::Random),
        headline_strategies());
  }
  state.counters["bohr_mean_reduction_pct"] =
      g_run.mean_data_reduction_percent(core::Strategy::Bohr);
  state.counters["iridium_mean_reduction_pct"] =
      g_run.mean_data_reduction_percent(core::Strategy::Iridium);
}
BENCHMARK(BM_Fig8)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(strategy_headers("site", headline_strategies()));
    fill_reduction_table(g_run, headline_strategies(), table);
    table.print(
        "Figure 8: data reduction (%) per site, random initial placement");
  });
}

// Figure 13: effect of the probe size k on Bohr's QCT.
//
// Paper's shape: QCT shrinks as k grows (better similarity information)
// and flattens beyond k = 30 — hence k = 30 as Bohr's default.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct KSweepRow {
  std::size_t k;
  double bigdata_udf_qct;
  double tpcds_qct;
  double facebook_qct;
};
std::vector<KSweepRow> g_rows;

double qct_for(workload::WorkloadKind kind, std::size_t k,
               engine::QueryKind query_kind) {
  auto cfg = bench_config(kind);
  cfg.probe_k = k;
  const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
  const auto& by_kind = run.outcome(core::Strategy::Bohr).qct_by_kind;
  const auto it = by_kind.find(query_kind);
  return it == by_kind.end()
             ? run.outcome(core::Strategy::Bohr).avg_qct_seconds
             : it->second;
}

void BM_Fig13(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  KSweepRow row{k, 0, 0, 0};
  for (auto _ : state) {
    row.bigdata_udf_qct =
        qct_for(workload::WorkloadKind::BigData, k, engine::QueryKind::Udf);
    row.tpcds_qct =
        qct_for(workload::WorkloadKind::TpcDs, k, engine::QueryKind::OlapSql);
    row.facebook_qct = qct_for(workload::WorkloadKind::Facebook, k,
                               engine::QueryKind::TraceJob);
  }
  g_rows.push_back(row);
}
BENCHMARK(BM_Fig13)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(30)
    ->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"k", "Bigdata(UDF)", "TPC-DS", "Facebook"});
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.k),
                     TablePrinter::num(row.bigdata_udf_qct, 2),
                     TablePrinter::num(row.tpcds_qct, 2),
                     TablePrinter::num(row.facebook_qct, 2)});
    }
    table.print("Figure 13: probe size k vs QCT (seconds)");
  });
}

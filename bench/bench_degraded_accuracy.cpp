// Degraded-accuracy benchmark (ISSUE 9): accuracy vs availability when
// a dataset's home sites are killed mid-run.
//
// Sweep: WHEN the home sites die (early / mid / late in an 6-round
// churn run) x HOW similar the datasets are (the generator's shared
// hot-pool fraction — more shared keys means better substitution
// candidates survive). For every cell, one Bohr controller prepares,
// the fault plan takes the victim dataset's every home site dark just
// before the kill round, and the degradation ladder answers every query
// anyway. The headline numbers: availability stays 100%, and the
// observed relative error of substituted answers stays within the
// reported error estimate on >= 90% of them.
#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "net/faults.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Cell {
  std::string kill;     // early / mid / late
  double sharing = 0.0; // generator global_key_fraction
  core::DegradedReport report;
  std::size_t victim = 0;
  std::size_t homes_killed = 0;
  double sub_within_bound = 1.0;  // fraction of substituted answers
  double all_within_bound = 1.0;  // fraction of all non-exact answers
  double mean_reported = 0.0;
  double mean_observed = 0.0;
};
std::vector<Cell> g_cells;

core::ExperimentConfig sweep_config(double sharing) {
  auto cfg = bench_config(workload::WorkloadKind::BigData);
  cfg.n_datasets = std::min<std::size_t>(cfg.n_datasets, 6);
  cfg.generator.gb_per_site = 40.0 / static_cast<double>(cfg.n_datasets);
  cfg.generator.global_key_fraction = sharing;
  return cfg;
}

double observed_error(const core::DegradedAnswer& a) {
  const double denom = std::max(std::abs(a.exact_value), 1e-9);
  return std::abs(a.value - a.exact_value) / denom;
}

void run_cell(const char* kill, std::size_t kill_round, double sharing) {
  core::ExperimentConfig cfg = sweep_config(sharing);

  // The churn runner's controller is deterministic per (config,
  // strategy), so a scout controller sees the exact post-movement
  // placement the run will have. Victim = the dataset with the fewest
  // home sites (the hardest loss the plan can inject).
  core::Controller scout = core::make_controller(cfg, core::Strategy::Bohr);
  scout.prepare();
  std::size_t victim = 0;
  std::size_t fewest = cfg.generator.sites + 1;
  std::vector<std::size_t> homes;
  for (std::size_t a = 0; a < scout.datasets().size(); ++a) {
    const core::DatasetState& d = scout.datasets()[a];
    std::vector<std::size_t> mine;
    for (std::size_t s = 0; s < d.site_count(); ++s) {
      if (!d.rows_at(s).empty()) mine.push_back(s);
    }
    if (!mine.empty() && mine.size() < fewest) {
      fewest = mine.size();
      victim = a;
      homes = mine;
    }
  }

  // Rounds execute at lag + r * lag; the outage opens halfway between
  // the previous round and the kill round and never ends.
  const double kill_at =
      cfg.lag_seconds * (static_cast<double>(kill_round) + 0.5);
  for (const std::size_t s : homes) {
    cfg.faults.outages.push_back(
        net::OutageWindow{static_cast<net::SiteId>(s), kill_at, 1e12});
  }

  core::ChurnOptions churn;
  churn.rounds = 6;
  churn.degrade = true;
  const core::ChurnRunResult result = core::run_churn_experiment(cfg, churn);

  Cell cell;
  cell.kill = kill;
  cell.sharing = sharing;
  cell.report = result.degraded;
  cell.victim = victim;
  cell.homes_killed = homes.size();
  std::size_t sub_total = 0, sub_ok = 0, deg_total = 0, deg_ok = 0;
  double sum_reported = 0.0, sum_observed = 0.0;
  for (const core::DegradedAnswer& a : cell.report.answers) {
    if (a.mode == core::AnswerMode::kExact) continue;
    const double obs = observed_error(a);
    ++deg_total;
    sum_reported += a.error_estimate;
    sum_observed += obs;
    if (obs <= a.error_estimate + 1e-9) ++deg_ok;
    if (a.mode == core::AnswerMode::kSubstituted) {
      ++sub_total;
      if (obs <= a.error_estimate + 1e-9) ++sub_ok;
    }
  }
  cell.sub_within_bound =
      sub_total > 0 ? static_cast<double>(sub_ok) / sub_total : 1.0;
  cell.all_within_bound =
      deg_total > 0 ? static_cast<double>(deg_ok) / deg_total : 1.0;
  cell.mean_reported = deg_total > 0 ? sum_reported / deg_total : 0.0;
  cell.mean_observed = deg_total > 0 ? sum_observed / deg_total : 0.0;
  g_cells.push_back(std::move(cell));
}

void BM_DegradedAccuracy(benchmark::State& state) {
  for (auto _ : state) {
    g_cells.clear();
    for (const double sharing : {0.10, 0.25, 0.60}) {
      run_cell("early", 1, sharing);
      run_cell("mid", 3, sharing);
      run_cell("late", 5, sharing);
    }
  }
  if (!g_cells.empty()) {
    double min_sub = 1.0;
    std::uint64_t answered = 0, total = 0;
    for (const Cell& c : g_cells) {
      min_sub = std::min(min_sub, c.sub_within_bound);
      answered += c.report.answers.size();
      total += c.report.queries_total;
    }
    state.counters["min_sub_within_bound"] = min_sub;
    state.counters["availability"] =
        total > 0 ? static_cast<double>(answered) / total : 1.0;
  }
}
BENCHMARK(BM_DegradedAccuracy)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"kill", "sharing", "queries", "exact", "partial",
                       "subst", "prior", "sub in-bound %", "all in-bound %",
                       "mean est", "mean obs"});
    double min_sub = 1.0;
    double min_all = 1.0;
    std::uint64_t answered = 0, total = 0;
    for (const Cell& c : g_cells) {
      table.add_row({c.kill, TablePrinter::num(c.sharing, 2),
                     std::to_string(c.report.queries_total),
                     std::to_string(c.report.exact),
                     std::to_string(c.report.partial),
                     std::to_string(c.report.substituted),
                     std::to_string(c.report.prior),
                     TablePrinter::num(100.0 * c.sub_within_bound, 1),
                     TablePrinter::num(100.0 * c.all_within_bound, 1),
                     TablePrinter::num(c.mean_reported, 3),
                     TablePrinter::num(c.mean_observed, 3)});
      min_sub = std::min(min_sub, c.sub_within_bound);
      min_all = std::min(min_all, c.all_within_bound);
      answered += c.report.answers.size();
      total += c.report.queries_total;
    }
    table.print(
        "Degraded accuracy: home-site kill timing x dataset similarity");
    std::printf(
        "availability=%.4f min_sub_within_bound=%.4f "
        "min_all_within_bound=%.4f\n",
        total > 0 ? static_cast<double>(answered) / total : 1.0, min_sub,
        min_all);
    add_bench_json_field("availability",
                         total > 0 && answered == total ? "1.0" : "0.0");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", min_sub);
    add_bench_json_field("min_sub_within_bound", buf);
  });
}

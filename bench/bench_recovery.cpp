// Durability overhead and recovery fidelity (ISSUE 4): what snapshots
// cost during prepare, how long recovery takes after a mid-movement
// crash, and that the recovered run's prepare report and QCTs match the
// fresh run. The checkpoint.snapshot / checkpoint.recover phase totals
// also travel in the BENCH_JSON epilogue.
#include <filesystem>

#include "bench_common.h"
#include "common/timer.h"
#include "core/checkpoint.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  double snapshot_write_s;
  std::size_t snapshots;
  std::size_t files;
  double recovery_s;
  double fresh_qct_s;
  double recovered_qct_s;
  bool report_identical;
};
Row g_row;

double avg_qct(core::Controller& controller) {
  double total = 0.0;
  std::size_t queries = 0;
  for (const core::QueryExecution& exec : controller.run_all_queries()) {
    total += exec.result.qct_seconds * static_cast<double>(exec.recurrences);
    queries += exec.recurrences;
  }
  return queries > 0 ? total / static_cast<double>(queries) : 0.0;
}

void BM_Recovery(benchmark::State& state) {
  const auto cfg = bench_config(workload::WorkloadKind::BigData);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bohr_bench_recovery";
  for (auto _ : state) {
    std::filesystem::remove_all(dir);

    // Fresh run: prepare with snapshots after every phase, then queries.
    core::Controller fresh = core::make_controller(cfg, core::Strategy::Bohr);
    core::CheckpointManager fresh_ck(dir.string());
    WallTimer snapshot_timer;
    const std::string fresh_image = core::serialize_prepare_report(
        core::checkpointed_prepare(fresh, fresh_ck));
    const double prepare_with_snapshots_s = snapshot_timer.elapsed_seconds();
    g_row.snapshots = fresh_ck.snapshots_written();
    g_row.files = fresh_ck.files_written();
    g_row.fresh_qct_s = avg_qct(fresh);

    // Snapshot cost alone: the same prepare without checkpointing.
    core::Controller plain = core::make_controller(cfg, core::Strategy::Bohr);
    WallTimer plain_timer;
    plain.prepare();
    g_row.snapshot_write_s =
        prepare_with_snapshots_s - plain_timer.elapsed_seconds();

    // Crash mid-movement (after the plan, before execution), recover in
    // a "new process", resume, and run the same queries.
    std::filesystem::remove_all(dir);
    {
      auto crash_cfg = cfg;
      crash_cfg.faults.crash_after_phase = "movement_plan";
      core::Controller crashing =
          core::make_controller(crash_cfg, core::Strategy::Bohr);
      core::CheckpointManager ck(dir.string(), 2,
                                 &crashing.options().faults);
      try {
        core::checkpointed_prepare(crashing, ck);
      } catch (const core::CrashInjected&) {
      }
    }
    core::Controller restored =
        core::make_controller(cfg, core::Strategy::Bohr);
    WallTimer recovery_timer;
    core::RecoveryManager recovery(dir.string());
    core::RecoveryResult found = recovery.recover(restored);
    g_row.recovery_s = recovery_timer.elapsed_seconds();
    core::CheckpointManager resume_ck(dir.string());
    const std::string recovered_image =
        core::serialize_prepare_report(core::resume_prepare(
            restored, std::move(found.progress), resume_ck));
    g_row.report_identical =
        found.recovered && recovered_image == fresh_image;
    g_row.recovered_qct_s = avg_qct(restored);
  }
  std::filesystem::remove_all(dir);
  state.counters["snapshot_write_s"] = g_row.snapshot_write_s;
  state.counters["recovery_s"] = g_row.recovery_s;
}
BENCHMARK(BM_Recovery)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"snapshot write (s)", "snapshots", "files",
                       "recovery (s)", "fresh QCT (s)", "recovered QCT (s)",
                       "QCT delta (s)", "report identical?"});
    table.add_row({TablePrinter::num(g_row.snapshot_write_s, 3),
                   std::to_string(g_row.snapshots),
                   std::to_string(g_row.files),
                   TablePrinter::num(g_row.recovery_s, 3),
                   TablePrinter::num(g_row.fresh_qct_s, 3),
                   TablePrinter::num(g_row.recovered_qct_s, 3),
                   TablePrinter::num(
                       g_row.recovered_qct_s - g_row.fresh_qct_s, 6),
                   g_row.report_identical ? "yes" : "NO"});
    table.print("Durability: snapshot cost and crash recovery (ISSUE 4)");
  });
}

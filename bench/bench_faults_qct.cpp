// Robustness: QCT degradation of every §8.1 scheme as WAN fault
// intensity rises. At intensity x the plan schedules a site outage
// (covering the probe exchange and the start of movement/shuffle), a
// degraded link, probe-report loss, and one mid-flight flow kill, all
// scaled by x. Intensity 0 is the pristine WAN — by the inert-plan
// guarantee it must match the no-fault path exactly.
//
// Alongside the table, the epilogue emits a machine-readable JSON array
// (one object per scheme x intensity) for downstream tooling.
#include <cstdio>

#include "bench_common.h"
#include "net/faults.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

net::FaultPlan fault_plan(double intensity) {
  net::FaultPlan plan;
  if (intensity <= 0.0) return plan;
  // Site 6 goes dark from t=0: its probes are lost, and movement /
  // shuffle flows touching it must wait out the outage and retry.
  plan.outages.push_back(net::OutageWindow{6, 0.0, 12.0 * intensity});
  // Site 3's access link sags for the first 90 seconds of each phase.
  plan.degradations.push_back(
      net::LinkDegradation{3, 0.0, 90.0, 1.0 - 0.6 * intensity});
  // Additionally lose a fraction of probe reports at random (stable
  // hash, so every scheme sees the same losses).
  plan.probe_loss_probability = 0.3 * intensity;
  // One kill against everything in flight shortly into each phase.
  plan.kills.push_back(net::FlowKill{2.0});
  return plan;
}

struct Row {
  double intensity;
  std::string strategy;
  double qct_seconds;
  double bytes_moved;
  std::size_t probe_pairs_lost;
  std::size_t lp_fallbacks;
  std::size_t retries;  // movement + shuffle
  double shortfall_bytes;
};
std::vector<Row> g_rows;

void BM_FaultIntensity(benchmark::State& state) {
  const double intensity = static_cast<double>(state.range(0)) / 100.0;
  auto cfg = bench_config(workload::WorkloadKind::BigData);
  cfg.faults = fault_plan(intensity);
  for (auto _ : state) {
    const auto run = core::run_workload(cfg, all_strategies());
    for (const core::Strategy s : all_strategies()) {
      const core::StrategyOutcome& o = run.outcome(s);
      Row row;
      row.intensity = intensity;
      row.strategy = core::to_string(s);
      row.qct_seconds = o.avg_qct_seconds;
      row.bytes_moved = o.prep.bytes_moved;
      row.probe_pairs_lost = o.prep.faults.probe_pairs_lost;
      row.lp_fallbacks = o.prep.faults.lp_fallbacks;
      row.retries = o.prep.faults.movement_retries + o.shuffle_retries;
      row.shortfall_bytes = o.prep.faults.deadline_shortfall_bytes;
      g_rows.push_back(row);
    }
  }
}
BENCHMARK(BM_FaultIntensity)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"intensity", "scheme", "QCT (s)", "moved (GB)",
                       "probes lost", "LP fallbacks", "retries",
                       "shortfall (GB)"});
    for (const auto& row : g_rows) {
      table.add_row({TablePrinter::num(row.intensity, 2), row.strategy,
                     TablePrinter::num(row.qct_seconds, 2),
                     TablePrinter::num(row.bytes_moved / 1e9, 2),
                     TablePrinter::num(static_cast<double>(row.probe_pairs_lost), 0),
                     TablePrinter::num(static_cast<double>(row.lp_fallbacks), 0),
                     TablePrinter::num(static_cast<double>(row.retries), 0),
                     TablePrinter::num(row.shortfall_bytes / 1e9, 2)});
    }
    table.print("Robustness: QCT vs fault intensity");

    std::printf("JSON: [");
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
      const Row& r = g_rows[i];
      std::printf(
          "%s{\"intensity\":%.2f,\"strategy\":\"%s\",\"qct_seconds\":%.6f,"
          "\"bytes_moved\":%.0f,\"probe_pairs_lost\":%zu,"
          "\"lp_fallbacks\":%zu,\"retries\":%zu,\"shortfall_bytes\":%.0f}",
          i == 0 ? "" : ",", r.intensity, r.strategy.c_str(), r.qct_seconds,
          r.bytes_moved, r.probe_pairs_lost, r.lp_fallbacks, r.retries,
          r.shortfall_bytes);
    }
    std::printf("]\n");
  });
}

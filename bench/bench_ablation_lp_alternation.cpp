// Ablation: how much does the alternating refinement of the joint LP
// (DESIGN.md §6) buy over (a) Iridium's sequential heuristic and (b) a
// single x-step round? Reports predicted shuffle time and moved bytes.
#include "bench_common.h"

#include "core/placement.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string variant;
  double predicted_t;
  double moved_gb;
  double lp_seconds;
};
std::vector<Row> g_rows;

core::PlacementProblem make_problem() {
  core::PlacementProblem p;
  p.topology = net::make_paper_topology(250e6);
  p.lag_seconds = 30.0;
  Rng rng(4242);
  for (std::size_t a = 0; a < 24; ++a) {
    core::DatasetPlacementInput d;
    d.dataset_id = a;
    d.reduction_ratio = rng.uniform(0.05, 0.3);
    d.query_count = static_cast<std::size_t>(rng.range(2, 10));
    for (std::size_t i = 0; i < 10; ++i) {
      d.input_bytes.push_back(rng.uniform(0.5e9, 3e9));
      d.self_similarity.push_back(rng.uniform(0.2, 0.8));
    }
    p.datasets.push_back(std::move(d));
  }
  return p;
}

void BM_AblationLp(benchmark::State& state) {
  const auto problem = make_problem();
  for (auto _ : state) {
    g_rows.clear();
    {
      const auto d = core::iridium_placement(problem);
      g_rows.push_back(Row{"Iridium heuristic", d.predicted_shuffle_seconds,
                           d.moved_bytes_total() / 1e9, d.lp_seconds});
    }
    {
      core::JointLpOptions opts;
      opts.max_rounds = 1;
      const auto d = core::joint_lp_placement(problem, opts);
      g_rows.push_back(Row{"Joint LP (1 round)", d.predicted_shuffle_seconds,
                           d.moved_bytes_total() / 1e9, d.lp_seconds});
    }
    {
      core::JointLpOptions opts;
      opts.max_rounds = 8;
      const auto d = core::joint_lp_placement(problem, opts);
      g_rows.push_back(Row{"Joint LP (8 rounds)", d.predicted_shuffle_seconds,
                           d.moved_bytes_total() / 1e9, d.lp_seconds});
    }
  }
  state.counters["joint8_t"] = g_rows.back().predicted_t;
}
BENCHMARK(BM_AblationLp)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"placement variant", "predicted shuffle t (s)",
                       "moved (GB)", "solve time (s)"});
    for (const auto& row : g_rows) {
      table.add_row({row.variant, TablePrinter::num(row.predicted_t, 3),
                     TablePrinter::num(row.moved_gb, 2),
                     TablePrinter::num(row.lp_seconds, 4)});
    }
    table.print("Ablation: joint-LP alternation vs heuristic placement");
  });
}

// Ablation: stragglers and speculative execution (the §9 related-work
// layer — Mantri/Dolly/GRASS — which is orthogonal to Bohr's WAN-level
// optimization). Shows that Bohr's advantage over Iridium-C survives
// local stragglers, and what speculation recovers.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string variant;
  double iridium_c_qct;
  double bohr_qct;
};
std::vector<Row> g_rows;

Row run_variant(const std::string& label, double straggler_p,
                bool speculation) {
  auto cfg = bench_config(workload::WorkloadKind::BigData);
  cfg.job.machine.straggler_probability = straggler_p;
  cfg.job.machine.straggler_slowdown = 6.0;
  cfg.job.machine.speculative_execution = speculation;
  const auto run = core::run_workload(
      cfg, {core::Strategy::IridiumC, core::Strategy::Bohr});
  return Row{label,
             run.outcome(core::Strategy::IridiumC).avg_qct_seconds,
             run.outcome(core::Strategy::Bohr).avg_qct_seconds};
}

void BM_AblationStragglers(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    g_rows.push_back(run_variant("no stragglers", 0.0, false));
    g_rows.push_back(run_variant("10% stragglers (6x)", 0.10, false));
    g_rows.push_back(run_variant("10% stragglers + speculation", 0.10, true));
    g_rows.push_back(run_variant("30% stragglers (6x)", 0.30, false));
    g_rows.push_back(run_variant("30% stragglers + speculation", 0.30, true));
  }
  state.counters["bohr_clean_qct"] = g_rows[0].bohr_qct;
  state.counters["bohr_worst_qct"] = g_rows[3].bohr_qct;
}
BENCHMARK(BM_AblationStragglers)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"variant", "Iridium-C QCT (s)", "Bohr QCT (s)"});
    for (const auto& row : g_rows) {
      table.add_row({row.variant, TablePrinter::num(row.iridium_c_qct, 2),
                     TablePrinter::num(row.bohr_qct, 2)});
    }
    table.print("Ablation: stragglers and speculative execution");
  });
}

// Figure 7: query completion time comparison with LOCALITY-AWARE initial
// data placement (input clustered by region/store/date onto sites).
//
// Paper's shape: all systems gain roughly 5% over random placement; the
// Bohr > Iridium-C > Iridium ordering is unchanged.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

std::vector<LabeledRun> g_runs;

void BM_Fig7(benchmark::State& state) {
  for (auto _ : state) {
    g_runs = run_three_workloads(workload::InitialPlacement::LocalityAware,
                                 headline_strategies());
  }
}
BENCHMARK(BM_Fig7)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(strategy_headers("workload", headline_strategies()));
    fill_qct_table(g_runs, headline_strategies(), table);
    table.print("Figure 7: QCT (seconds), locality-aware initial placement");
  });
}

// Table 2: dataset attributes and their impact on probing — four sample
// datasets of different sizes share one probe budget of k = 30 records,
// allocated mainly by dataset size; similarity-checking time follows the
// allocation.
#include "bench_common.h"

#include "common/timer.h"
#include "core/similarity_service.h"
#include "similarity/probe.h"
#include "workload/query_mix.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct SampleDataset {
  std::size_t id;
  workload::WorkloadKind kind;
  double size_gb;  // paper's sample sizes
};

// Mirrors the paper's four sample datasets (0.87 / 4.32 / 3.21 / 0.57 GB).
constexpr SampleDataset kSamples[] = {
    {1, workload::WorkloadKind::BigData, 0.87},
    {3, workload::WorkloadKind::TpcDs, 4.32},
    {7, workload::WorkloadKind::Facebook, 3.21},
    {10, workload::WorkloadKind::BigData, 0.57},
};

struct Row {
  std::size_t id;
  std::size_t dims;
  double size_gb;
  std::size_t probe_records;
  double checking_seconds;
};
std::vector<Row> g_rows;

core::DatasetState make_sample(const SampleDataset& sample) {
  workload::GeneratorConfig gen;
  gen.sites = 10;
  gen.gb_per_site = sample.size_gb / 10.0;
  // Rows scale with the dataset size so checking time does too.
  gen.rows_per_site =
      static_cast<std::size_t>(120.0 * sample.size_gb) + 40;
  gen.seed = sample.id;
  auto bundle = workload::generate_dataset(sample.kind, sample.id, gen);
  Rng rng(sample.id);
  auto mix = workload::sample_query_mix(bundle, rng);
  return core::DatasetState(std::move(bundle), std::move(mix), true);
}

void BM_Tab2(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    // Allocate the shared k = 30 budget by dataset size (§8.4).
    std::vector<double> sizes;
    for (const auto& s : kSamples) sizes.push_back(s.size_gb);
    const auto alloc = similarity::allocate_probe_budget(sizes, 30);

    for (std::size_t d = 0; d < std::size(kSamples); ++d) {
      core::DatasetState ds = make_sample(kSamples[d]);
      core::SimilarityOptions options;
      options.probe_k = std::max<std::size_t>(alloc[d], 1);
      const WallTimer timer;
      const auto sim = core::check_similarity(ds, options);
      g_rows.push_back(Row{kSamples[d].id,
                           ds.bundle().cube_spec.dimensions.size(),
                           kSamples[d].size_gb, alloc[d],
                           timer.elapsed_seconds()});
      benchmark::DoNotOptimize(sim.probe_bytes);
    }
  }
}
BENCHMARK(BM_Tab2)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"dataset id", "# dimensions", "size (GB)",
                       "# records in probe", "checking time (s)"});
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.id), std::to_string(row.dims),
                     TablePrinter::num(row.size_gb, 2),
                     std::to_string(row.probe_records),
                     TablePrinter::num(row.checking_seconds, 4)});
    }
    table.print("Table 2: dataset attributes and probing impact (k=30 total)");
  });
}

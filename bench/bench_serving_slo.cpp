// Serving SLO sweep: offered load vs tail query completion time.
//
// One prepared Bohr controller serves the multi-tenant Poisson/Zipf
// stream at increasing per-tenant arrival rates spanning under- to
// over-subscription of the execution slots. The p99 QCT by offered load
// is published as the `p99_by_load` JSON series; every number is
// modeled virtual time, so the series is byte-stable across hosts,
// build types, and thread counts — tools/perf_smoke.py gates it against
// the checked-in baseline as a model-drift alarm.
#include "bench_common.h"

#include "serve/server.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

constexpr double kRates[] = {0.02, 0.05, 0.1, 0.2, 0.4};

struct Row {
  double offered_qps = 0.0;  // rate x tenants
  serve::ServeReport report;
};
std::vector<Row> g_rows;

serve::ServeOptions serving_options(double rate) {
  serve::ServeOptions opts;
  opts.arrivals.tenants = 4;
  opts.arrivals.arrival_rate_qps = rate;
  opts.arrivals.duration_seconds = 300.0;
  opts.arrivals.seed = 20181204;
  opts.batching.max_batch = 8;
  opts.batching.max_delay_seconds = 0.25;
  opts.slots = 4;
  opts.migration_period_seconds = 30.0;
  return opts;
}

void BM_Serving_Slo(benchmark::State& state) {
  const auto cfg = bench_config(workload::WorkloadKind::BigData);
  core::Controller controller =
      core::make_controller(cfg, core::Strategy::Bohr);
  controller.prepare();
  for (auto _ : state) {
    g_rows.clear();
    for (const double rate : kRates) {
      Row row;
      row.offered_qps = rate * 4.0;
      row.report = serve::run_serving(controller, serving_options(rate));
      g_rows.push_back(std::move(row));
    }
  }
}
BENCHMARK(BM_Serving_Slo)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"offered load (qps)", "queries", "p50 (s)", "p95 (s)",
                       "p99 (s)", "max (s)", "throughput (qps)",
                       "makespan (s)"});
    std::string json = "{";
    for (const auto& row : g_rows) {
      const LatencySummary& s = row.report.summary;
      table.add_row({TablePrinter::num(row.offered_qps, 2),
                     std::to_string(row.report.queries),
                     TablePrinter::num(s.p50_seconds, 3),
                     TablePrinter::num(s.p95_seconds, 3),
                     TablePrinter::num(s.p99_seconds, 3),
                     TablePrinter::num(s.max_seconds, 3),
                     TablePrinter::num(s.throughput_qps, 4),
                     TablePrinter::num(row.report.makespan_seconds, 2)});
      if (json.size() > 1) json += ",";
      json += "\"" + TablePrinter::num(row.offered_qps, 2) +
              "\":" + TablePrinter::num(s.p99_seconds, 6);
    }
    json += "}";
    // p99_by_load is what tools/perf_smoke.py --key gates on.
    add_bench_json_field("p99_by_load", json);
    table.print("Serving SLO: offered load vs tail QCT");
  });
}

// Sensitivity: WAN bandwidth. Sweeping the base-tier uplink shows the
// shuffle-dominated regime the paper targets (slow WAN: Bohr's savings
// matter most) fading into a compute-bound regime (fast WAN: everyone
// converges).
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  double base_mbps;
  double iridium_qct;
  double iridium_c_qct;
  double bohr_qct;
  double bohr_gain_pct;  // vs Iridium-C
};
std::vector<Row> g_rows;

void BM_Bandwidth(benchmark::State& state) {
  const double base = static_cast<double>(state.range(0)) * 1e6;
  auto cfg = bench_config(workload::WorkloadKind::BigData);
  cfg.base_bandwidth = base;
  Row row{base / 1e6, 0, 0, 0, 0};
  for (auto _ : state) {
    const auto run = core::run_workload(cfg, headline_strategies());
    row.iridium_qct = run.outcome(core::Strategy::Iridium).avg_qct_seconds;
    row.iridium_c_qct =
        run.outcome(core::Strategy::IridiumC).avg_qct_seconds;
    row.bohr_qct = run.outcome(core::Strategy::Bohr).avg_qct_seconds;
    row.bohr_gain_pct =
        100.0 * (1.0 - row.bohr_qct / row.iridium_c_qct);
  }
  g_rows.push_back(row);
}
BENCHMARK(BM_Bandwidth)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(50)
    ->Arg(125)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"base uplink (MB/s)", "Iridium QCT (s)",
                       "Iridium-C QCT (s)", "Bohr QCT (s)",
                       "Bohr gain vs Iridium-C (%)"});
    for (const auto& row : g_rows) {
      table.add_row({TablePrinter::num(row.base_mbps, 0),
                     TablePrinter::num(row.iridium_qct, 2),
                     TablePrinter::num(row.iridium_c_qct, 2),
                     TablePrinter::num(row.bohr_qct, 2),
                     TablePrinter::num(row.bohr_gain_pct, 1)});
    }
    table.print("Sensitivity: base WAN bandwidth");
  });
}

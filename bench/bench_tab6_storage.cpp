// Table 6: per-node storage overhead comparison (GB). Each node holds
// 40GB of raw input per workload; Iridium-C adds OLAP cubes; Bohr adds
// cubes plus similarity metadata. Note the paper's punchline: cube
// systems need LESS data at query time than Iridium, because queries
// read only the cubes (+ metadata) while raw data can go to cold storage.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  core::Strategy strategy;
  core::StorageReport report;
};
std::vector<Row> g_rows;

void BM_Tab6(benchmark::State& state) {
  const auto cfg = bench_config(workload::WorkloadKind::BigData);
  for (auto _ : state) {
    g_rows.clear();
    for (const auto s : headline_strategies()) {
      g_rows.push_back(Row{s, core::compute_storage(cfg, s)});
    }
  }
  for (const auto& row : g_rows) {
    if (row.strategy == core::Strategy::Bohr) {
      state.counters["bohr_storage_gb"] = row.report.storage_per_node_gb;
    }
  }
}
BENCHMARK(BM_Tab6)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"scheme", "storage per node (GB)",
                       "needed by queries (GB)", "OLAP cubes (GB)",
                       "similarity metadata (GB)"});
    for (const auto& row : g_rows) {
      const auto& r = row.report;
      table.add_row({core::to_string(row.strategy),
                     TablePrinter::num(r.storage_per_node_gb, 2),
                     TablePrinter::num(r.needed_by_queries_gb, 2),
                     r.olap_cubes_gb > 0 ? TablePrinter::num(r.olap_cubes_gb, 2)
                                         : std::string("-"),
                     r.similarity_metadata_gb > 0
                         ? TablePrinter::num(r.similarity_metadata_gb, 2)
                         : std::string("-")});
    }
    table.print("Table 6: per-node storage overhead (GB, 40GB raw input)");
  });
}

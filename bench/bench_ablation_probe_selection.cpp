// Ablation: §4.2 composes probes from the TOP-k clusters by size. How
// much does that ranking matter versus sampling k random clusters?
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string variant;
  double reduction_pct;
  double qct_seconds;
};
std::vector<Row> g_rows;

void BM_AblationProbeSelection(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    {
      auto cfg = bench_config(workload::WorkloadKind::BigData);
      const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
      g_rows.push_back(
          Row{"top-k clusters (paper)",
              run.mean_data_reduction_percent(core::Strategy::Bohr),
              run.outcome(core::Strategy::Bohr).avg_qct_seconds});
    }
    {
      auto cfg = bench_config(workload::WorkloadKind::BigData);
      cfg.random_probe_records = true;
      const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
      g_rows.push_back(
          Row{"random clusters",
              run.mean_data_reduction_percent(core::Strategy::Bohr),
              run.outcome(core::Strategy::Bohr).avg_qct_seconds});
    }
  }
  state.counters["topk_reduction"] = g_rows[0].reduction_pct;
  state.counters["random_reduction"] = g_rows[1].reduction_pct;
}
BENCHMARK(BM_AblationProbeSelection)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"probe composition", "mean data reduction (%)",
                       "avg QCT (s)"});
    for (const auto& row : g_rows) {
      table.add_row({row.variant, TablePrinter::num(row.reduction_pct, 2),
                     TablePrinter::num(row.qct_seconds, 2)});
    }
    table.print("Ablation: probe record selection (top-k vs random)");
  });
}

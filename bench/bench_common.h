// Shared scaffolding for the per-figure/per-table benchmark binaries.
//
// Every bench registers its measurements with google-benchmark (one
// iteration per configuration — these are system experiments, not
// microbenchmarks) and collects rows into a TablePrinter that is printed
// after the run, mirroring the paper's tables and figure series.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"

namespace bohr::bench {

/// Default experiment scale, tuned so every bench finishes in seconds on
/// one core while keeping the paper's regime: 40GB/site/workload split
/// across the datasets, movement budget ~30-40% of a site's data within
/// the 30s lag, and QCTs landing in the paper's 2-16s band.
/// Override the dataset count with BOHR_BENCH_DATASETS (default 12;
/// the paper uses 300 — linear in runtime, identical code path).
core::ExperimentConfig bench_config(
    workload::WorkloadKind kind,
    workload::InitialPlacement placement =
        workload::InitialPlacement::Random);

/// The six schemes in the paper's presentation order.
const std::vector<core::Strategy>& all_strategies();

/// Fig 6/7 main-comparison subset.
const std::vector<core::Strategy>& headline_strategies();

/// Fig 10/11 component-microbenchmark subset.
const std::vector<core::Strategy>& component_strategies();

/// Shared result sink printed at the end of the bench binary.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers)
      : table_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    table_.add_row(std::move(cells));
  }

  /// Prints the table plus CSV block (prefixed for easy grepping).
  void print(const std::string& title) const;

 private:
  TablePrinter table_;
};

/// Registers an extra top-level field for this bench's machine-readable
/// result object (printed as BENCH_JSON and written to BENCH_<name>.json).
/// `json_value` must already be valid JSON (a number, string, object, …).
/// Call from the epilogue — fields are emitted after it runs. This is how
/// a bench publishes its measured rows (not just phase timings) to perf
/// gates like tools/perf_smoke.py.
void add_bench_json_field(const std::string& key,
                          const std::string& json_value);

/// Runs registered benchmarks, then `epilogue`. Returns main()'s status.
int run_bench_main(int argc, char** argv, const std::function<void()>& epilogue);

}  // namespace bohr::bench

namespace bohr::bench {

/// One workload's comparison run, labeled for table rows.
struct LabeledRun {
  std::string label;
  core::WorkloadRun run;
};

/// Runs big-data, TPC-DS, and Facebook with the given schemes.
std::vector<LabeledRun> run_three_workloads(
    workload::InitialPlacement placement,
    const std::vector<core::Strategy>& strategies);

/// QCT rows in the paper's Fig 6/7/10 layout: "Big data (scan)",
/// "Big data (UDF)", "Big data (aggr)", "TPC-DS", "Facebook".
void fill_qct_table(const std::vector<LabeledRun>& runs,
                    const std::vector<core::Strategy>& strategies,
                    ResultTable& table);

/// Per-site data-reduction rows (Fig 8/9/11 layout) for the big-data run.
void fill_reduction_table(const core::WorkloadRun& run,
                          const std::vector<core::Strategy>& strategies,
                          ResultTable& table);

/// Headers: "workload"/"site" column followed by scheme names.
std::vector<std::string> strategy_headers(
    std::string first, const std::vector<core::Strategy>& strategies);

}  // namespace bohr::bench

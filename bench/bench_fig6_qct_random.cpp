// Figure 6: query completion time comparison with RANDOM initial data
// placement — Iridium vs Iridium-C vs Bohr over big data (scan/UDF/aggr),
// TPC-DS, and Facebook workloads.
//
// Paper's shape: Iridium-C slightly beats Iridium (5-20%); Bohr beats
// Iridium-C by 25-52% depending on the workload.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

std::vector<LabeledRun> g_runs;

void BM_Fig6(benchmark::State& state) {
  for (auto _ : state) {
    g_runs = run_three_workloads(workload::InitialPlacement::Random,
                                 headline_strategies());
  }
  if (!g_runs.empty()) {
    state.counters["bohr_qct_s"] =
        g_runs[0].run.outcome(core::Strategy::Bohr).avg_qct_seconds;
    state.counters["iridium_c_qct_s"] =
        g_runs[0].run.outcome(core::Strategy::IridiumC).avg_qct_seconds;
  }
}
BENCHMARK(BM_Fig6)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(strategy_headers("workload", headline_strategies()));
    fill_qct_table(g_runs, headline_strategies(), table);
    table.print("Figure 6: QCT (seconds), random initial placement");
  });
}

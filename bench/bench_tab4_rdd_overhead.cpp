// Table 4: overhead of runtime RDD similarity checking as the number of
// executors per node grows (TPC-DS workload, k = 30).
//
// Paper's shape: checking time grows with executor count (bigger k-means
// problem); QCT improves with parallelism up to a point, then the
// checking overhead eats the gain (their best case: 6 executors).
#include "bench_common.h"

#include <algorithm>

#include "common/stats.h"
#include "core/controller.h"
#include "workload/query_mix.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::size_t executors;
  double rdd_check_seconds;  // mean per query across sites with data
  double qct_seconds;
};
std::vector<Row> g_rows;

void BM_Tab4(benchmark::State& state) {
  const auto executors = static_cast<std::size_t>(state.range(0));
  auto cfg = bench_config(workload::WorkloadKind::TpcDs);
  cfg.job.machine.executors = executors;

  Row row{executors, 0.0, 0.0};
  for (auto _ : state) {
    const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
    row.qct_seconds = run.outcome(core::Strategy::Bohr).avg_qct_seconds;
  }
  // Recompute the per-query RDD-checking cost via a direct controller run
  // (run_workload aggregates QCT only).
  {
    const auto topo = cfg.make_topology();
    std::vector<core::DatasetState> states;
    Rng mix_rng(bohr::hash_combine(cfg.seed, 0xA11CE));
    workload::GeneratorConfig gen = cfg.generator;
    gen.seed = bohr::hash_combine(cfg.seed, gen.seed);
    for (std::size_t a = 0; a < cfg.n_datasets; ++a) {
      auto bundle = workload::generate_dataset(cfg.workload, a, gen);
      auto mix = workload::sample_query_mix(bundle, mix_rng);
      states.emplace_back(std::move(bundle), std::move(mix), true);
    }
    core::ControllerOptions options;
    options.strategy = core::Strategy::Bohr;
    options.similarity.probe_k = cfg.probe_k;
    options.lag_seconds = cfg.lag_seconds;
    options.job = cfg.job;
    options.seed = cfg.seed;
    core::Controller controller(topo, std::move(states), options);
    RunningStats check;
    for (const auto& exec : controller.run_all_queries()) {
      double worst = 0.0;
      for (const auto& site : exec.result.sites) {
        worst = std::max(worst, site.rdd_check_seconds);
      }
      check.add(worst);
    }
    row.rdd_check_seconds = check.mean();
  }
  state.counters["rdd_check_s"] = row.rdd_check_seconds;
  state.counters["qct_s"] = row.qct_seconds;
  g_rows.push_back(row);
}
BENCHMARK(BM_Tab4)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(
        {"# executors in a node", "RDD similarity checking (s)", "QCT (s)"});
    std::string json = "{";
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.executors),
                     TablePrinter::num(row.rdd_check_seconds, 4),
                     TablePrinter::num(row.qct_seconds, 2)});
      if (json.size() > 1) json += ",";
      json += "\"" + std::to_string(row.executors) + "\":{\"rdd_check_s\":" +
              TablePrinter::num(row.rdd_check_seconds, 6) + ",\"qct_s\":" +
              TablePrinter::num(row.qct_seconds, 6) + "}";
    }
    json += "}";
    add_bench_json_field("by_executors", json);
    table.print("Table 4: RDD similarity checking overhead vs executors");
  });
}

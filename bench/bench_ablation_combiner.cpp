// Ablation: the combiner is the mechanism Bohr's entire benefit rides on
// (§1) — without map-side combining, similar data cannot be merged and
// similarity-aware placement loses its purpose. Compare Bohr with the
// combiner on vs off (and Iridium-C as reference).
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string variant;
  double qct_seconds;
  double wan_gb;
};
std::vector<Row> g_rows;

void BM_AblationCombiner(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    {
      auto cfg = bench_config(workload::WorkloadKind::BigData);
      const auto run = core::run_workload(
          cfg, {core::Strategy::IridiumC, core::Strategy::Bohr});
      g_rows.push_back(
          Row{"Iridium-C (combiner on)",
              run.outcome(core::Strategy::IridiumC).avg_qct_seconds,
              run.outcome(core::Strategy::IridiumC).wan_shuffle_bytes / 1e9});
      g_rows.push_back(
          Row{"Bohr (combiner on)",
              run.outcome(core::Strategy::Bohr).avg_qct_seconds,
              run.outcome(core::Strategy::Bohr).wan_shuffle_bytes / 1e9});
    }
    {
      auto cfg = bench_config(workload::WorkloadKind::BigData);
      cfg.job.machine.combiner_enabled = false;
      const auto run = core::run_workload(cfg, {core::Strategy::Bohr});
      g_rows.push_back(
          Row{"Bohr (combiner OFF)",
              run.outcome(core::Strategy::Bohr).avg_qct_seconds,
              run.outcome(core::Strategy::Bohr).wan_shuffle_bytes / 1e9});
    }
  }
  state.counters["bohr_on_qct"] = g_rows[1].qct_seconds;
  state.counters["bohr_off_qct"] = g_rows[2].qct_seconds;
}
BENCHMARK(BM_AblationCombiner)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"variant", "avg QCT (s)", "WAN shuffle (GB)"});
    for (const auto& row : g_rows) {
      table.add_row({row.variant, TablePrinter::num(row.qct_seconds, 2),
                     TablePrinter::num(row.wan_gb, 2)});
    }
    table.print("Ablation: map-side combiner on/off");
  });
}

// Figure 9: per-site intermediate data reduction (%) over vanilla Spark,
// LOCALITY-AWARE initial placement, big-data workload.
//
// Paper's shape: Bohr's reduction is almost unchanged vs Figure 8, while
// Iridium and Iridium-C improve somewhat.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

core::WorkloadRun g_run;

void BM_Fig9(benchmark::State& state) {
  for (auto _ : state) {
    g_run = core::run_workload(
        bench_config(workload::WorkloadKind::BigData,
                     workload::InitialPlacement::LocalityAware),
        headline_strategies());
  }
  state.counters["bohr_mean_reduction_pct"] =
      g_run.mean_data_reduction_percent(core::Strategy::Bohr);
}
BENCHMARK(BM_Fig9)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(strategy_headers("site", headline_strategies()));
    fill_reduction_table(g_run, headline_strategies(), table);
    table.print(
        "Figure 9: data reduction (%) per site, locality-aware placement");
  });
}

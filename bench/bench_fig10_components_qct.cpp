// Figure 10: component microbenchmark — QCT of Bohr-Sim / Bohr-Joint /
// Bohr-RDD against the Iridium-C baseline across the workloads.
//
// Paper's shape: Bohr-Sim ~12-33% faster than Iridium-C; Bohr-Joint adds
// a further 15-20%; Bohr-RDD adds ~10% over Bohr-Sim.
#include "bench_common.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

std::vector<LabeledRun> g_runs;

void BM_Fig10(benchmark::State& state) {
  for (auto _ : state) {
    g_runs = run_three_workloads(workload::InitialPlacement::Random,
                                 component_strategies());
  }
}
BENCHMARK(BM_Fig10)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table(strategy_headers("workload", component_strategies()));
    fill_qct_table(g_runs, component_strategies(), table);
    table.print("Figure 10: component benefit in QCT (seconds)");
  });
}

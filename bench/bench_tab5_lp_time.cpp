// Table 5: wall-clock solving time of the joint data/task placement LP
// per workload, plus a paper-scale row (300 datasets, the paper's
// experiment size) to show the LP stays tractable.
#include "bench_common.h"

#include "core/placement.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::string label;
  double lp_seconds;
  std::size_t lp_iterations;
};
std::vector<Row> g_rows;

void bench_workload_lp(workload::WorkloadKind kind, const char* label) {
  const auto cfg = bench_config(kind);
  const auto run = core::run_workload(cfg, {core::Strategy::BohrJoint});
  const auto& prep = run.outcome(core::Strategy::BohrJoint).prep;
  g_rows.push_back(
      Row{label, prep.decision.lp_seconds, prep.decision.lp_iterations});
}

void BM_Tab5_Workloads(benchmark::State& state) {
  for (auto _ : state) {
    g_rows.clear();
    bench_workload_lp(workload::WorkloadKind::BigData, "Big data");
    bench_workload_lp(workload::WorkloadKind::TpcDs, "TPC-DS");
    bench_workload_lp(workload::WorkloadKind::Facebook, "Facebook");
  }
}
BENCHMARK(BM_Tab5_Workloads)->Unit(benchmark::kSecond)->Iterations(1);

// Larger scale: 60 datasets over 10 sites -> 5,401 movement columns and
// ~640 constraint rows. (The paper's 300 datasets produce a 27k x 3k
// tableau — past what a dense-tableau simplex handles comfortably; a
// sparse revised simplex would be the production choice. 60 datasets
// already shows the scaling trend.)
void BM_Tab5_LargerScale(benchmark::State& state) {
  core::PlacementProblem problem;
  problem.topology = net::make_paper_topology(250e6);
  problem.lag_seconds = 30.0;
  Rng rng(99);
  for (std::size_t a = 0; a < 60; ++a) {
    core::DatasetPlacementInput d;
    d.dataset_id = a;
    d.reduction_ratio = rng.uniform(0.05, 0.3);
    d.query_count = static_cast<std::size_t>(rng.range(2, 10));
    for (std::size_t i = 0; i < 10; ++i) {
      d.input_bytes.push_back(rng.uniform(0.05e9, 0.3e9));
      d.self_similarity.push_back(rng.uniform(0.2, 0.8));
    }
    problem.datasets.push_back(std::move(d));
  }
  core::PlacementDecision decision;
  core::JointLpOptions options;
  options.max_rounds = 2;
  for (auto _ : state) {
    decision = core::joint_lp_placement(problem, options);
    benchmark::DoNotOptimize(decision.predicted_shuffle_seconds);
  }
  state.counters["lp_s"] = decision.lp_seconds;
  g_rows.push_back(Row{"60 datasets (5x bench scale)", decision.lp_seconds,
                       decision.lp_iterations});
}
BENCHMARK(BM_Tab5_LargerScale)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"workload", "LP solving time (s)", "simplex pivots"});
    std::string json = "{";
    for (const auto& row : g_rows) {
      table.add_row({row.label, TablePrinter::num(row.lp_seconds, 4),
                     std::to_string(row.lp_iterations)});
      if (json.size() > 1) json += ",";
      json += "\"" + row.label + "\":" + TablePrinter::num(row.lp_seconds, 6);
    }
    json += "}";
    // lp_seconds_by_case is what tools/perf_smoke.py --key gates on.
    add_bench_json_field("lp_seconds_by_case", json);
    table.print("Table 5: joint placement LP solving time");
  });
}

// Table 3: data similarity checking time in pre-processing as the probe
// size k grows — the full probe exchange over every dataset of the
// big-data workload.
//
// Paper's shape: monotone growth with k; even k = 100 stays cheap enough
// to hide entirely in the pre-processing lag.
#include "bench_common.h"

#include "core/similarity_service.h"
#include "workload/query_mix.h"

namespace {

using namespace bohr;
using namespace bohr::bench;

struct Row {
  std::size_t k;
  double seconds;
};
std::vector<Row> g_rows;

void BM_Tab3(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = bench_config(workload::WorkloadKind::BigData);

  // Build the controller-side states once (pre-processing is offline).
  std::vector<core::DatasetState> states;
  Rng mix_rng(3);
  for (std::size_t a = 0; a < cfg.n_datasets; ++a) {
    auto bundle = workload::generate_dataset(cfg.workload, a, cfg.generator);
    auto mix = workload::sample_query_mix(bundle, mix_rng);
    states.emplace_back(std::move(bundle), std::move(mix), true);
  }

  double seconds = 0.0;
  for (auto _ : state) {
    seconds = 0.0;
    for (const auto& ds : states) {
      core::SimilarityOptions options;
      options.probe_k = k;
      const auto sim = core::check_similarity(ds, options);
      seconds += sim.checking_seconds;
      benchmark::DoNotOptimize(sim.pair.size());
    }
  }
  state.counters["checking_s"] = seconds;
  g_rows.push_back(Row{k, seconds});
}
BENCHMARK(BM_Tab3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(10)
    ->Arg(15)
    ->Arg(20)
    ->Arg(25)
    ->Arg(30)
    ->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, [] {
    ResultTable table({"# records per probe", "similarity checking (s)"});
    std::string json = "{";
    for (const auto& row : g_rows) {
      table.add_row({std::to_string(row.k),
                     TablePrinter::num(row.seconds, 4)});
      if (json.size() > 1) json += ",";
      json += "\"" + std::to_string(row.k) +
              "\":" + TablePrinter::num(row.seconds, 6);
    }
    json += "}";
    // checking_seconds_by_k is what tools/perf_smoke.py gates on.
    add_bench_json_field("checking_seconds_by_k", json);
    table.print("Table 3: similarity checking time vs probe size");
  });
}
